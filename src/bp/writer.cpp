#include "bp/writer.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>

#include "compress/parallel.hpp"
#include "fsim/storage_model.hpp"
#include "util/binio.hpp"
#include "util/crc32c.hpp"
#include "util/error.hpp"
#include "util/hash64.hpp"

namespace bitio::bp {

namespace {

/// Modelled CRC32C throughput for the per-chunk checksum charge (software
/// slice-by-one on one core; same order as the memcopy bandwidth).
constexpr double kCrcBandwidthBps = 12e9;

/// The no-operator marshalling copy lands in a recycled pool buffer that is
/// already resident and write-warmed from earlier steps, so it runs at
/// roughly twice the cold-buffer bandwidth the seed model charged (no page
/// faults, no allocator traffic).  memcopy_us stays nonzero — the copy is
/// real — but drops accordingly in profiling.json / Darshan accounting.
constexpr double kWarmCopyFactor = 2.0;

/// Zero-copy marshal (put_borrowed, no operator): the one remaining copy
/// reads the caller's SoA arrays exactly once — no staged intermediate, a
/// single pass through the SIMD block marshal with streaming stores into
/// the warm aggregation buffer — so the staging write+read round trip of
/// the put() path is gone and the charge runs at about twice the warm
/// staged-copy bandwidth.  Fig 8's "warm-copy factor" for these chunks.
constexpr double kZeroCopyFactor = 4.0;

/// Reserve for a fresh per-aggregator aggregation buffer; after the first
/// step the buffer comes back from the pool with its grown capacity.
constexpr std::size_t kAggInitialReserve = 64 * 1024;

/// Submit everything pushed into `sq` and surface any failed completion as
/// the IoError a per-op pwrite would have thrown, so the drain retry and
/// watchdog machinery behave identically on both paths.  Torn writes are
/// reported short in their cqe but not failed — matching posix pwrite's
/// silent-torn semantics, which keeps batched and per-op containers in
/// byte agreement under the same fault plan.
void submit_and_reap(fsim::SubmissionQueue& sq) {
  if (sq.pending() == 0) return;
  sq.submit();
  for (const fsim::Cqe& cqe : sq.reap_all())
    if (!cqe.ok) throw IoError(cqe.error);
}

/// Push onto the ring, draining it first when full (extra doorbells beyond
/// one per lane only appear when a step outgrows io_batch_depth).
void ring_push(fsim::SubmissionQueue& sq, fsim::Sqe sqe) {
  if (sq.pending() == sq.depth()) submit_and_reap(sq);
  sq.push(std::move(sqe));
}

/// Min/max over a real chunk's elements for the metadata statistics.
template <typename T>
void minmax(std::span<const std::uint8_t> data, double& lo, double& hi) {
  const std::size_t n = data.size() / sizeof(T);
  if (n == 0) return;
  const T* p = reinterpret_cast<const T*>(data.data());
  T mn = p[0], mx = p[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (p[i] < mn) mn = p[i];
    if (p[i] > mx) mx = p[i];
  }
  lo = double(mn);
  hi = double(mx);
}

}  // namespace

StreamPolicy stream_policy_of(const std::string& name) {
  if (name == "block") return StreamPolicy::block;
  if (name == "drop_oldest" || name == "drop-oldest")
    return StreamPolicy::drop_oldest;
  if (name == "disconnect") return StreamPolicy::disconnect;
  throw UsageError(
      "bp: unknown stream_policy '" + name +
      "' (expected \"block\", \"drop_oldest\", or \"disconnect\")");
}

const char* stream_policy_name(StreamPolicy policy) {
  switch (policy) {
    case StreamPolicy::block: return "block";
    case StreamPolicy::drop_oldest: return "drop_oldest";
    case StreamPolicy::disconnect: return "disconnect";
  }
  return "?";
}

EngineConfig EngineConfig::from_json(const Json& adios2) {
  EngineConfig config;
  if (adios2.contains("engine")) {
    const Json& engine = adios2.at("engine");
    const std::string type =
        engine.get_or("type", Json("bp4")).as_string();
    if (type == "bp4") config.engine = EngineType::bp4;
    else if (type == "bp5") config.engine = EngineType::bp5;
    else if (type == "stream") config.engine = EngineType::stream;
    else throw UsageError("adios2 config: unknown engine '" + type + "'");
    if (engine.contains("parameters")) {
      const Json& params = engine.at("parameters");
      // The paper uses OPENPMD_ADIOS2_BP5_NumAgg; accept both spellings.
      for (const char* key : {"NumAggregators", "NumAgg"}) {
        if (params.contains(key))
          config.num_aggregators = int(params.at(key).as_int());
      }
      if (params.contains("Profile")) {
        const Json& profile = params.at("Profile");
        config.profiling = profile.is_string()
                               ? profile.as_string() == "On"
                               : profile.as_bool();
      }
      if (params.contains("AsyncWrite")) {
        const Json& async = params.at("AsyncWrite");
        config.async_write = async.is_string() ? async.as_string() == "On"
                                               : async.as_bool();
      }
      if (params.contains("BufferChunkSize"))
        config.buffer_chunk_mb =
            std::size_t(params.at("BufferChunkSize").as_uint());
      // Batched queue-pair submission knobs (core::Bit1IoConfig emits them
      // only when set, so legacy configs parse unchanged).
      if (params.contains("IoBatchDepth"))
        config.io_batch_depth = int(params.at("IoBatchDepth").as_int());
      if (params.contains("CoalesceWrites")) {
        const Json& coalesce = params.at("CoalesceWrites");
        config.coalesce_writes = coalesce.is_string()
                                     ? coalesce.as_string() == "On"
                                     : coalesce.as_bool();
      }
      if (params.contains("DrainTimeoutMs"))
        config.drain_timeout_ms = int(params.at("DrainTimeoutMs").as_int());
      if (params.contains("MaxDrainRetries"))
        config.max_drain_retries =
            int(params.at("MaxDrainRetries").as_int());
      // Stream-engine window knobs (ignored by the file engines).
      if (params.contains("StreamMaxSteps"))
        config.stream_max_steps = int(params.at("StreamMaxSteps").as_int());
      if (params.contains("StreamPolicy"))
        config.stream_policy = params.at("StreamPolicy").as_string();
      // Topology-modeled gather path (core::Bit1IoConfig::adios2_toml emits
      // these only when something differs from flat-on-flat, so legacy
      // configs parse unchanged).
      if (params.contains("Aggregation"))
        config.aggregation = params.at("Aggregation").as_string();
      if (params.contains("Topology"))
        config.topology = params.at("Topology").as_string();
      if (params.contains("NumaPerNode"))
        config.numa_per_node = int(params.at("NumaPerNode").as_int());
      if (params.contains("NicsPerNode"))
        config.nics_per_node = int(params.at("NicsPerNode").as_int());
    }
  }
  if (adios2.contains("dataset")) {
    const Json& dataset = adios2.at("dataset");
    if (dataset.contains("operators")) {
      const auto& ops = dataset.at("operators").as_array();
      if (ops.size() > 1)
        throw UsageError("adios2 config: at most one operator is supported");
      if (!ops.empty()) {
        config.codec = ops[0].at("type").as_string();
        if (ops[0].contains("typesize"))
          config.codec_typesize =
              std::size_t(ops[0].at("typesize").as_uint());
        // Block-parallel pipeline knobs ride on the operator entry.
        if (ops[0].contains("threads"))
          config.compress_threads = int(ops[0].at("threads").as_int());
        if (ops[0].contains("block_kb"))
          config.compress_block_kb =
              std::size_t(ops[0].at("block_kb").as_uint());
      }
    }
  }
  return config;
}

topo::Mapper Writer::build_mapper(const EngineConfig& config, int nranks) {
  if (nranks <= 0 || config.ranks_per_node <= 0)
    return topo::Mapper(topo::Cluster::flat(), 1);
  topo::Cluster cluster = topo::Cluster::preset(config.topology);
  // The engine's ranks_per_node knob stays the single source of the node
  // size; a hierarchical preset contributes the NUMA/NIC shape (which the
  // explicit overrides may in turn replace).
  if (cluster.multi_node()) {
    cluster.ranks_per_node = config.ranks_per_node;
    // A preset describes a fully-populated node; when ranks_per_node
    // undersubscribes it, scale the NUMA-domain count to the occupied
    // slots so the shape stays coherent (an explicit numa_per_node below
    // is still validated strictly).
    cluster.numa_per_node =
        std::gcd(cluster.numa_per_node, cluster.ranks_per_node);
  }
  if (config.numa_per_node > 0) cluster.numa_per_node = config.numa_per_node;
  if (config.nics_per_node > 0) cluster.nics_per_node = config.nics_per_node;
  cluster.validate();
  return topo::Mapper(cluster, nranks);
}

Writer::Writer(ForEngineFactory, fsim::SharedFs& fs, std::string path,
               EngineConfig config, int nranks)
    : fs_(fs), path_(std::move(path)), config_(config), nranks_(nranks),
      mapper_(build_mapper(config_, nranks_)) {
  if (nranks_ <= 0) throw UsageError("bp::Writer: nranks must be positive");
  if (config_.engine == EngineType::stream)
    throw UsageError(
        "bp::Writer: the stream engine has no file container — construct it "
        "via bp::make_engine(\"stream\", ...)");
  if (config_.ranks_per_node <= 0)
    throw UsageError("bp::Writer: ranks_per_node must be positive");
  if (config_.max_inflight_steps < 1)
    throw UsageError("bp::Writer: max_inflight_steps must be >= 1");
  if (config_.drain_timeout_ms < 0)
    throw UsageError("bp::Writer: drain_timeout_ms must be >= 0");
  if (config_.max_drain_retries < 0)
    throw UsageError("bp::Writer: max_drain_retries must be >= 0");
  if (config_.io_batch_depth < 0)
    throw UsageError("bp::Writer: io_batch_depth must be >= 0");
  if (config_.compress_threads < 1)
    throw UsageError("bp::Writer: compress_threads must be >= 1");
  if (config_.compress_block_kb < 1)
    throw UsageError("bp::Writer: compress_block_kb must be >= 1");
  // Keep the accepted strings in lockstep with core::kBit1IoAggregationModes
  // (the topology-registry lint rule checks both sites).
  if (config_.aggregation != "flat" && config_.aggregation != "two_level")
    throw UsageError("bp::Writer: unknown aggregation '" +
                     config_.aggregation +
                     "' (expected \"flat\" or \"two_level\")");

  const int nnodes =
      (nranks_ + config_.ranks_per_node - 1) / config_.ranks_per_node;
  num_aggregators_ =
      config_.num_aggregators > 0 ? config_.num_aggregators : nnodes;
  num_aggregators_ = std::min(num_aggregators_, nranks_);

  if (config_.codec != "none" && !config_.codec.empty()) {
    codec_ = cz::make_codec(config_.codec, config_.codec_typesize);
    if (config_.compress_threads > 1) {
      // Block-parallel pipeline: chunks are split into compress_block_kb
      // blocks compressed concurrently, with per-block scratch drawn from
      // the writer's pool.  Output frames are CZP1 and byte-identical for
      // any thread count.
      codec_ = std::make_unique<cz::ParallelCodec>(
          std::move(codec_), config_.compress_threads,
          config_.compress_block_kb * 1024, nullptr, &buffer_pool_);
    }
  }

  pending_.resize(std::size_t(nranks_));

  // Create the container: every aggregator leader creates its subfile, rank
  // 0 creates the metadata files.  (This is the file population Table II
  // counts: M data files + md.0 + md.idx [+ profiling.json, mmd.0].)
  for (int a = 0; a < num_aggregators_; ++a) {
    fsim::FsClient client(fs_, fsim::ClientId(leader_of(a)));
    data_fds_.push_back(client.open(path_ + "/data." + std::to_string(a),
                                    fsim::OpenMode::create));
    data_offsets_.push_back(0);
  }
  fsim::FsClient root(fs_, 0);
  md_fd_ = root.open(path_ + "/md.0", fsim::OpenMode::create);
  idx_fd_ = root.open(path_ + "/md.idx", fsim::OpenMode::create);
  // Reserve the md.idx header (magic + count, patched at close).
  BinWriter header;
  header.u32(kIdxMagicV5);
  header.u32(0);
  root.pwrite(idx_fd_, 0, header.buffer());

  if (config_.async_write) {
    drain_thread_ = std::thread([this] { drain_loop(); });
    if (config_.drain_timeout_ms > 0)
      watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

Writer::~Writer() {
  bool need_close;
  {
    util::MutexLock lock(mutex_);
    need_close = !closed_;
  }
  if (need_close) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; an incomplete container is detectable
      // by the reader via the md.idx count.
    }
  }
  stop_drain_thread();
  stop_watchdog_thread();
}

int Writer::leader_of(int aggregator) const {
  return int(std::int64_t(aggregator) * nranks_ / num_aggregators_);
}

int Writer::aggregator_of(int rank) const {
  if (rank < 0 || rank >= nranks_)
    throw UsageError("bp::Writer: rank out of range");
  return int(std::int64_t(rank) * num_aggregators_ / nranks_);
}

void Writer::begin_step(std::uint64_t step) {
  util::MutexLock lock(mutex_);
  if (closed_) throw UsageError("bp::Writer: engine is closed");
  if (step_open_) throw UsageError("bp::Writer: step already open");
  if (config_.async_write) {
    // Backpressure: with a bound of K, step N+K may not open until step
    // N's drain has landed.
    util::MutexLock dlock(drain_mutex_);
    while (!drain_error_ && inflight_ >= config_.max_inflight_steps)
      drain_done_cv_.wait(dlock);
    if (drain_error_) std::rethrow_exception(drain_error_);
  }
  step_open_ = true;
  current_step_ = step;
  attributes_.clear();
  step_vars_.clear();
  step_kind_ = 0;
}

void Writer::validate_put(int rank, const std::string& name, Datatype dtype,
                          const Dims& shape, const Dims& offset,
                          const Dims& count) {
  if (!step_open_) throw UsageError("bp::Writer: put outside a step");
  if (rank < 0 || rank >= nranks_)
    throw UsageError("bp::Writer: rank out of range");
  if (shape.size() != offset.size() || shape.size() != count.size())
    throw UsageError("bp::Writer: dimension rank mismatch for '" + name +
                     "'");
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (offset[d] + count[d] > shape[d])
      throw UsageError("bp::Writer: chunk of '" + name +
                       "' exceeds global shape");
  }
  // Shape/dtype agreement with earlier puts of the same variable this step.
  auto [it, fresh] = step_vars_.try_emplace(name, dtype, shape);
  if (!fresh && (it->second.first != dtype || it->second.second != shape))
    throw UsageError("bp::Writer: inconsistent shape/dtype for '" + name +
                     "'");
}

void Writer::put(int rank, const std::string& name, const Dims& shape,
                 const ChunkView& view) {
  util::MutexLock lock(mutex_);
  validate_put(rank, name, view.dtype(), shape, view.offset(), view.count());
  if (step_kind_ == 2)
    throw UsageError("bp::Writer: cannot mix real and synthetic puts");
  step_kind_ = 1;
  PendingChunk chunk;
  chunk.var = name;
  chunk.dtype = view.dtype();
  chunk.shape = shape;
  chunk.offset = view.offset();
  chunk.count = view.count();
  // Stage the payload in a recycled pool buffer: steady-state puts do no
  // heap allocation (the buffer returns to the pool after the drain).
  chunk.data = buffer_pool_.acquire(view.bytes().size());
  if (!view.bytes().empty())
    std::memcpy(chunk.data.data(), view.bytes().data(), view.bytes().size());
  ++stage_copies_total_;
  pending_[std::size_t(rank)].push_back(std::move(chunk));
}

void Writer::put_borrowed(int rank, const std::string& name,
                          const Dims& shape, const ChunkView& view) {
  util::MutexLock lock(mutex_);
  validate_put(rank, name, view.dtype(), shape, view.offset(), view.count());
  if (step_kind_ == 2)
    throw UsageError("bp::Writer: cannot mix real and synthetic puts");
  step_kind_ = 1;
  PendingChunk chunk;
  chunk.var = name;
  chunk.dtype = view.dtype();
  chunk.shape = shape;
  chunk.offset = view.offset();
  chunk.count = view.count();
  // No staging: the drain marshals straight from the caller's bytes (which
  // the deferred-Put contract keeps valid until the step lands).
  chunk.borrowed = view.bytes();
  pending_[std::size_t(rank)].push_back(std::move(chunk));
}

void Writer::put_synthetic(int rank, const std::string& name, Datatype dtype,
                           const Dims& shape, const Dims& offset,
                           const Dims& count) {
  util::MutexLock lock(mutex_);
  validate_put(rank, name, dtype, shape, offset, count);
  if (step_kind_ == 1)
    throw UsageError("bp::Writer: cannot mix real and synthetic puts");
  step_kind_ = 2;
  PendingChunk chunk;
  chunk.var = name;
  chunk.dtype = dtype;
  chunk.shape = shape;
  chunk.offset = offset;
  chunk.count = count;
  chunk.synthetic = true;
  pending_[std::size_t(rank)].push_back(std::move(chunk));
}

void Writer::add_attribute(const std::string& name, AttrValue value) {
  util::MutexLock lock(mutex_);
  if (!step_open_)
    throw UsageError("bp::Writer: attribute outside a step");
  attributes_.emplace_back(name, std::move(value));
}

void Writer::compute_stats(const PendingChunk& chunk, ChunkRecord& meta) {
  const std::span<const std::uint8_t> payload = chunk.payload();
  switch (chunk.dtype) {
    case Datatype::uint8:
      minmax<std::uint8_t>(payload, meta.stat_min, meta.stat_max);
      break;
    case Datatype::int32:
      minmax<std::int32_t>(payload, meta.stat_min, meta.stat_max);
      break;
    case Datatype::uint64:
      minmax<std::uint64_t>(payload, meta.stat_min, meta.stat_max);
      break;
    case Datatype::float32:
      minmax<float>(payload, meta.stat_min, meta.stat_max);
      break;
    case Datatype::float64:
      minmax<double>(payload, meta.stat_min, meta.stat_max);
      break;
  }
}

void Writer::end_step() {
  StepJob job;
  {
    util::MutexLock lock(mutex_);
    if (!step_open_) throw UsageError("bp::Writer: no open step");
    step_open_ = false;
    job.step = current_step_;
    job.kind = step_kind_;
    job.attributes = std::move(attributes_);
    attributes_.clear();
    job.chunks = std::move(pending_);
    pending_.assign(std::size_t(nranks_), {});
    ++steps_written_;
  }
  if (!config_.async_write) {
    drain_step(job);
    recycle_job(job);
    return;
  }
  {
    util::MutexLock lock(drain_mutex_);
    if (drain_error_) std::rethrow_exception(drain_error_);
    drain_queue_.push_back(std::move(job));
    ++inflight_;
    peak_inflight_ = std::max(peak_inflight_, inflight_);
  }
  drain_cv_.notify_one();
}

void Writer::drain_step(const StepJob& job) {
  const bool async = config_.async_write;
  touch_heartbeat();

  StepRecord record;
  record.step = job.step;
  record.attributes = job.attributes;

  // Variable table in first-seen order.
  std::vector<std::string> var_order;
  std::map<std::string, std::size_t> var_index;

  // Aggregation buffers (real payloads) and size counters (synthetic),
  // one per subfile.  Real steps draw the buffers from the pool — after
  // the first step each comes back with its grown capacity, so appends
  // below never allocate.
  std::vector<std::vector<std::uint8_t>> agg(
      static_cast<std::size_t>(num_aggregators_));
  if (job.kind == 1)
    for (auto& buffer : agg)
      buffer = buffer_pool_.acquire_reserve(kAggInitialReserve);
  std::vector<std::uint64_t> agg_bytes(
      static_cast<std::size_t>(num_aggregators_), 0);
  // Queue-pair path: one sqe per marshalled chunk extent (the natural unit
  // the ring receives), so the extent sizes are tracked during marshalling.
  // Coalescing later merges adjacent extents back into vectored device
  // records.
  const bool batched = config_.io_batch_depth > 0;
  std::vector<std::vector<std::uint64_t>> agg_extents(
      static_cast<std::size_t>(num_aggregators_));
  // Async: marshalling/compression runs on each aggregator's drain lane,
  // not the ranks' critical path.  Accumulated per aggregator, charged to
  // the leader's lane below.
  std::vector<double> lane_compress(static_cast<std::size_t>(num_aggregators_),
                                    0.0);
  std::vector<double> lane_memcopy(static_cast<std::size_t>(num_aggregators_),
                                   0.0);
  std::vector<double> lane_crc(static_cast<std::size_t>(num_aggregators_),
                               0.0);

  // Topology-modeled gather: how each rank's marshalled bytes reach its
  // aggregator leader.  Only a multi-node topology records gather ops —
  // on the flat topology the loop below emits exactly the pre-topology
  // trace, byte for byte.  "flat" aggregation ships every rank's bytes
  // straight to the aggregator over the inter-node links; "two_level"
  // gathers onto the node leader over intra-node shared memory first and
  // ships one combined transfer per (node, aggregator) pair afterwards.
  const bool model_gather = mapper_.multi_node();
  const bool two_level = model_gather && config_.aggregation == "two_level";
  std::map<std::pair<int, int>, std::uint64_t> node_agg_bytes;

  for (int rank = 0; rank < nranks_; ++rank) {
    const auto& chunks = job.chunks[std::size_t(rank)];
    if (chunks.empty()) continue;
    touch_heartbeat();
    const int a = aggregator_of(rank);
    fsim::FsClient client(fs_, fsim::ClientId(rank));
    double rank_compress_s = 0.0;  // coalesced per-rank CPU charge
    double rank_memcopy_s = 0.0;
    double rank_crc_s = 0.0;
    std::uint64_t rank_stored = 0;  // this rank's marshalled bytes this step
    for (const auto& chunk : chunks) {
      auto [it, fresh] = var_index.try_emplace(chunk.var, var_order.size());
      if (fresh) {
        var_order.push_back(chunk.var);
        record.variables.push_back(
            {chunk.var, chunk.dtype, chunk.shape, {}});
      }
      VarRecord& var = record.variables[it->second];

      const std::uint64_t raw_bytes =
          chunk.synthetic
              ? element_count(chunk.count) * dtype_size(chunk.dtype)
              : chunk.payload().size();
      if (chunk.is_borrowed()) ++zero_copy_chunks_total_;
      std::uint64_t stored_size = 0;
      std::string operator_name;
      std::uint32_t chunk_crc = 0;
      bool chunk_has_crc = false;
      if (codec_) {
        // Operator path: compress_append() straight into the aggregation
        // buffer — no intermediate frame vector, no copy; charge the
        // compression cost, no separate memcopy (Fig 8).  The charge is
        // parallel wall time when compress_threads > 1.
        operator_name = codec_->name();
        const double seconds = compress_cpu_seconds(raw_bytes);
        rank_compress_s += seconds;
        if (async)
          drain_us_total_ += seconds * 1e6;
        else
          compress_us_total_ += seconds * 1e6;
        if (chunk.synthetic) {
          stored_size = std::uint64_t(double(raw_bytes) *
                                      config_.synthetic_codec_ratio);
        } else {
          std::vector<std::uint8_t>& dst = agg[std::size_t(a)];
          const std::size_t start = dst.size();
          codec_->compress_append(chunk.payload(), dst);
          stored_size = dst.size() - start;
          chunk_crc = crc32c(std::span<const std::uint8_t>(
              dst.data() + start, std::size_t(stored_size)));
          chunk_has_crc = true;
        }
      } else {
        // No operator: the marshalling copy into the aggregation buffer.
        // For staged puts both ends are warm recycled pool memory, hence
        // the kWarmCopyFactor discount over the seed model's cold-buffer
        // charge; a borrowed chunk skipped staging entirely, so its single
        // source-to-aggregation pass runs at kZeroCopyFactor.
        const double factor =
            chunk.is_borrowed() ? kZeroCopyFactor : kWarmCopyFactor;
        const double seconds =
            double(raw_bytes) / (config_.mem_bandwidth_bps * factor);
        rank_memcopy_s += seconds;
        if (async)
          drain_us_total_ += seconds * 1e6;
        else
          memcopy_us_total_ += seconds * 1e6;
        stored_size = raw_bytes;
        if (!chunk.synthetic) {
          const auto payload = chunk.payload();
          chunk_crc = crc32c(payload);
          chunk_has_crc = true;
          agg[std::size_t(a)].insert(agg[std::size_t(a)].end(),
                                     payload.begin(), payload.end());
        }
      }
      if (chunk_has_crc) {
        // End-to-end integrity: checksum the stored bytes at marshalling
        // time, identically on the sync and async paths (so async vs sync
        // containers stay byte-identical).
        const double seconds = double(stored_size) / kCrcBandwidthBps;
        rank_crc_s += seconds;
        crc_us_total_ += seconds * 1e6;
      }

      ChunkRecord meta;
      meta.offset = chunk.offset;
      meta.count = chunk.count;
      if (!chunk.synthetic) compute_stats(chunk, meta);
      meta.writer_rank = std::uint32_t(rank);
      meta.subfile = std::uint32_t(a);
      meta.file_offset =
          data_offsets_[std::size_t(a)] + agg_bytes[std::size_t(a)];
      meta.stored_bytes = stored_size;
      meta.raw_bytes = raw_bytes;
      meta.operator_name = operator_name;
      meta.crc32c = chunk_crc;
      meta.has_crc = chunk_has_crc;
      if (!chunk.synthetic) {
        // Content identity over the raw bytes (format v6): the dedup key
        // the incremental-checkpoint layer compares across epochs.
        meta.content_hash = util::hash64(chunk.payload());
        meta.has_content_hash = true;
      }
      var.chunks.push_back(std::move(meta));

      raw_bytes_total_ += raw_bytes;
      stored_bytes_total_ += stored_size;
      agg_bytes[std::size_t(a)] += stored_size;
      if (batched && stored_size > 0)
        agg_extents[std::size_t(a)].push_back(stored_size);
      rank_stored += stored_size;
    }
    if (model_gather && rank_stored > 0) {
      // First gather hop.  The op is recorded on the *receiving* rank's
      // client sequence (its overlapped drain lane when async): a gatherer
      // cannot forward or write bytes it has not received, so the fan-in
      // must gate the receiver's subsequent trace ops — recorded on the
      // sender it would replay off the critical path and cost nothing.
      if (two_level) {
        const int node_leader = mapper_.leader_of(rank);
        if (rank != node_leader) {
          fsim::FsClient receiver(fs_, fsim::ClientId(node_leader),
                                  async ? kDataLane : 0);
          receiver.transfer(data_fds_[std::size_t(a)], fsim::ClientId(rank),
                            rank_stored, /*intra_node=*/true);
        }
        node_agg_bytes[{mapper_.node_of(rank), a}] += rank_stored;
      } else {
        const int leader = leader_of(a);
        if (rank != leader) {
          fsim::FsClient receiver(fs_, fsim::ClientId(leader),
                                  async ? kDataLane : 0);
          receiver.transfer(data_fds_[std::size_t(a)], fsim::ClientId(rank),
                            rank_stored, mapper_.same_node(rank, leader));
        }
      }
    }
    if (async) {
      lane_compress[std::size_t(a)] += rank_compress_s;
      lane_memcopy[std::size_t(a)] += rank_memcopy_s;
      lane_crc[std::size_t(a)] += rank_crc_s;
    } else {
      if (rank_compress_s > 0.0)
        client.charge_cpu(rank_compress_s, "compress");
      if (rank_memcopy_s > 0.0) client.charge_cpu(rank_memcopy_s, "memcopy");
      if (rank_crc_s > 0.0) client.charge_cpu(rank_crc_s, "crc32c");
    }
  }

  // Second gather hop (two-level only): each node leader ships its node's
  // combined payload per aggregator over the inter-node links.  A node
  // leader that is itself the aggregator leader already holds the bytes.
  // Recorded on the aggregator leader (the receiver) ahead of its write
  // ops, for the same critical-path reason as the first hop.
  for (const auto& [key, bytes] : node_agg_bytes) {
    const auto [node, agg] = key;
    if (bytes == 0) continue;
    const int node_leader = mapper_.node_leader(node);
    const int leader = leader_of(agg);
    if (node_leader == leader) continue;
    fsim::FsClient receiver(fs_, fsim::ClientId(leader),
                            async ? kDataLane : 0);
    receiver.transfer(data_fds_[std::size_t(agg)], fsim::ClientId(node_leader),
                      bytes, mapper_.same_node(node_leader, leader));
  }

  // Each aggregator leader appends its step buffer as one sequential write
  // — on its overlapped drain lane in buffer_chunk_mb slices when async.
  const bool synthetic_step = job.kind == 2;
  const std::uint64_t slice =
      std::max<std::uint64_t>(1, config_.buffer_chunk_mb) << 20;
  for (int a = 0; a < num_aggregators_; ++a) {
    const std::uint64_t bytes = agg_bytes[std::size_t(a)];
    fsim::FsClient client(fs_, fsim::ClientId(leader_of(a)),
                          async ? kDataLane : 0);
    if (async) {
      if (lane_compress[std::size_t(a)] > 0.0)
        client.charge_cpu(lane_compress[std::size_t(a)], "compress");
      if (lane_memcopy[std::size_t(a)] > 0.0)
        client.charge_cpu(lane_memcopy[std::size_t(a)], "memcopy");
      if (lane_crc[std::size_t(a)] > 0.0)
        client.charge_cpu(lane_crc[std::size_t(a)], "crc32c");
    }
    if (bytes == 0) continue;
    touch_heartbeat();
    if (batched) {
      // Queue-pair path: the same bytes at the same offsets, issued as one
      // sqe per marshalled chunk extent through one ring per aggregator
      // lane.  Without coalescing every extent is its own device record
      // (and pays its own per-record RPC cost, like N separate pwritevs
      // would); with coalescing adjacent extents merge into vectored
      // records, reclaiming that overhead without changing what lands on
      // disk.
      fsim::SubmissionQueue sq(client, std::size_t(config_.io_batch_depth),
                               config_.coalesce_writes);
      std::uint64_t pos = 0;
      for (const std::uint64_t n : agg_extents[std::size_t(a)]) {
        touch_heartbeat();
        fsim::Sqe sqe;
        sqe.fd = data_fds_[std::size_t(a)];
        sqe.offset = data_offsets_[std::size_t(a)] + pos;
        sqe.user_data = pos;
        if (synthetic_step)
          sqe.simulated_bytes = n;
        else
          sqe.iov.push_back(
              std::span<const std::uint8_t>(agg[std::size_t(a)])
                  .subspan(std::size_t(pos), std::size_t(n)));
        ring_push(sq, std::move(sqe));
        pos += n;
      }
      submit_and_reap(sq);
    } else if (synthetic_step) {
      client.seek(data_fds_[std::size_t(a)], data_offsets_[std::size_t(a)]);
      const std::uint64_t nslices = async ? (bytes + slice - 1) / slice : 1;
      client.write_simulated(data_fds_[std::size_t(a)], bytes,
                             std::uint32_t(nslices));
    } else if (async) {
      for (std::uint64_t pos = 0; pos < bytes; pos += slice) {
        const std::uint64_t n = std::min<std::uint64_t>(slice, bytes - pos);
        touch_heartbeat();
        client.pwrite(
            data_fds_[std::size_t(a)], data_offsets_[std::size_t(a)] + pos,
            std::span<const std::uint8_t>(agg[std::size_t(a)]).subspan(
                std::size_t(pos), std::size_t(n)));
      }
    } else {
      client.pwrite(data_fds_[std::size_t(a)], data_offsets_[std::size_t(a)],
                    agg[std::size_t(a)]);
    }
    data_offsets_[std::size_t(a)] += bytes;
  }
  // Aggregation buffers go back to the pool (with whatever capacity they
  // grew to) for the next step's drain.
  for (auto& buffer : agg) buffer_pool_.release(std::move(buffer));

  // Rank 0 appends step metadata and the index entry (its own overlapped
  // metadata lane when async).
  touch_heartbeat();
  fsim::FsClient root(fs_, 0, async ? kMetaLane : 0);
  const std::vector<std::uint8_t> md = encode_step(record);
  IndexEntry entry{job.step, md_offset_, md.size(), crc32c(md), true};
  BinWriter idx_bytes;
  idx_bytes.u64(entry.step);
  idx_bytes.u64(entry.md_offset);
  idx_bytes.u64(entry.md_length);
  idx_bytes.u32(entry.md_crc);
  idx_bytes.u32(0);  // reserved (v5 entry layout)
  const std::uint64_t idx_offset = 8 + index_.size() * kIdxEntryBytesV5;
  if (batched) {
    // Rank 0's two tiny per-step appends (md.0 record + md.idx entry) ride
    // one doorbell.  On the posix path each pays the synchronous
    // small-record round trip every step — exactly the metadata cost the
    // queue pair amortizes away at scale.
    fsim::SubmissionQueue mq(root, 2, config_.coalesce_writes);
    fsim::Sqe md_sqe;
    md_sqe.fd = md_fd_;
    md_sqe.offset = md_offset_;
    md_sqe.iov.push_back(std::span<const std::uint8_t>(md));
    mq.push(std::move(md_sqe));
    fsim::Sqe idx_sqe;
    idx_sqe.fd = idx_fd_;
    idx_sqe.offset = idx_offset;
    idx_sqe.iov.push_back(std::span<const std::uint8_t>(idx_bytes.buffer()));
    idx_sqe.user_data = 1;
    mq.push(std::move(idx_sqe));
    submit_and_reap(mq);
  } else {
    root.pwrite(md_fd_, md_offset_, md);
    root.pwrite(idx_fd_, idx_offset, idx_bytes.buffer());
  }
  md_offset_ += md.size();
  index_.push_back(entry);
  // Retained for the footer index close() appends; the encoded bytes above
  // are final, so the record can be moved out.
  footer_steps_.push_back(std::move(record));
}

double Writer::compress_cpu_seconds(std::uint64_t raw_bytes) const {
  const double serial = double(raw_bytes) / codec_->compress_speed_bps();
  if (config_.compress_threads <= 1) return serial;
  const std::uint64_t block =
      std::uint64_t(config_.compress_block_kb) * 1024;
  const std::uint64_t nblocks =
      raw_bytes == 0 ? 0 : (raw_bytes + block - 1) / block;
  return fsim::parallel_cpu_seconds(serial, config_.compress_threads,
                                    nblocks);
}

void Writer::recycle_job(StepJob& job) {
  for (auto& rank_chunks : job.chunks)
    for (auto& chunk : rank_chunks)
      buffer_pool_.release(std::move(chunk.data));
}

Writer::DrainSnapshot Writer::snapshot_drain_state() const {
  DrainSnapshot snap;
  snap.data_offsets = data_offsets_;
  snap.md_offset = md_offset_;
  snap.index_size = index_.size();
  snap.footer_steps = footer_steps_.size();
  snap.memcopy_us = memcopy_us_total_;
  snap.compress_us = compress_us_total_;
  snap.drain_us = drain_us_total_;
  snap.crc_us = crc_us_total_;
  snap.raw_bytes = raw_bytes_total_;
  snap.stored_bytes = stored_bytes_total_;
  snap.zero_copy_chunks = zero_copy_chunks_total_;
  return snap;
}

void Writer::restore_drain_state(const DrainSnapshot& snap) {
  data_offsets_ = snap.data_offsets;
  md_offset_ = snap.md_offset;
  index_.resize(snap.index_size);
  footer_steps_.resize(snap.footer_steps);
  memcopy_us_total_ = snap.memcopy_us;
  compress_us_total_ = snap.compress_us;
  drain_us_total_ = snap.drain_us;
  crc_us_total_ = snap.crc_us;
  raw_bytes_total_ = snap.raw_bytes;
  stored_bytes_total_ = snap.stored_bytes;
  zero_copy_chunks_total_ = snap.zero_copy_chunks;
}

void Writer::drain_job_with_retries(const StepJob& job) {
  // Bounded retry of a failed or watchdog-cancelled attempt.  Each attempt
  // starts from a rolled-back snapshot, so a partially landed attempt is
  // overwritten in place (same pwrite offsets) and the container stays
  // consistent.  Past the bound the step is abandoned with a typed error;
  // the poisoned queue then skips later jobs, so close() cannot hang.
  const int attempts = 1 + std::max(0, config_.max_drain_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const DrainSnapshot snap = snapshot_drain_state();
    drain_active_.store(true, std::memory_order_release);
    touch_heartbeat();
    try {
      drain_step(job);
      drain_active_.store(false, std::memory_order_release);
      return;
    } catch (...) {
      drain_active_.store(false, std::memory_order_release);
      restore_drain_state(snap);
      if (attempt + 1 < attempts) {
        drain_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      steps_abandoned_.fetch_add(1, std::memory_order_relaxed);
      std::string cause = "unknown error";
      try {
        throw;
      } catch (const std::exception& e) {
        cause = e.what();
      } catch (...) {
      }
      util::MutexLock lock(drain_mutex_);
      if (!drain_error_)
        drain_error_ = std::make_exception_ptr(TimeoutError(
            "bp::Writer: drain of step " + std::to_string(job.step) +
            " abandoned after " + std::to_string(attempts) +
            " attempts: " + cause));
    }
  }
}

void Writer::drain_loop() {
  for (;;) {
    StepJob job;
    bool skip = false;
    {
      util::MutexLock lock(drain_mutex_);
      while (!drain_stop_ && drain_queue_.empty()) drain_cv_.wait(lock);
      if (drain_queue_.empty()) return;  // stop requested, queue drained
      job = std::move(drain_queue_.front());
      drain_queue_.pop_front();
      skip = drain_error_ != nullptr;  // poisoned: count down, don't write
    }
    if (!skip) drain_job_with_retries(job);
    // After the final attempt (or a skip) nothing reads the staged
    // payloads again: hand them back to the pool.
    recycle_job(job);
    {
      util::MutexLock lock(drain_mutex_);
      --inflight_;
    }
    drain_done_cv_.notify_all();
  }
}

void Writer::watchdog_loop() {
  const auto timeout = std::chrono::milliseconds(config_.drain_timeout_ms);
  const auto poll = std::max(timeout / 8, std::chrono::milliseconds(1));
  std::uint64_t last_beat = heartbeat_.load(std::memory_order_relaxed);
  auto last_progress = std::chrono::steady_clock::now();
  util::MutexLock lock(watchdog_mutex_);
  for (;;) {
    // A spurious wake just re-runs the (cheap) heartbeat check early.
    watchdog_cv_.wait_for(lock, poll);
    if (watchdog_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t beat = heartbeat_.load(std::memory_order_relaxed);
    if (beat != last_beat || !drain_active_.load(std::memory_order_acquire)) {
      last_beat = beat;
      last_progress = now;
      continue;
    }
    if (now - last_progress >= timeout) {
      // The active job has not heartbeated within drain_timeout: a lane is
      // wedged.  Cancel the stalled simulated I/O; the drain worker's
      // attempt fails with TimeoutError and is retried or abandoned.  The
      // cancelled-op count is uninteresting here — the timeout counter
      // below is the observable.
      (void)fs_.cancel_stalls();
      watchdog_timeouts_.fetch_add(1, std::memory_order_relaxed);
      last_progress = now;  // fresh window for the retry
    }
  }
}

void Writer::stop_watchdog_thread() {
  if (!watchdog_thread_.joinable()) return;
  {
    util::MutexLock lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_thread_.join();
}

Writer::WatchdogStats Writer::watchdog_stats() const {
  WatchdogStats stats;
  stats.timeouts = watchdog_timeouts_.load(std::memory_order_relaxed);
  stats.retries = drain_retries_.load(std::memory_order_relaxed);
  stats.steps_abandoned = steps_abandoned_.load(std::memory_order_relaxed);
  return stats;
}

void Writer::wait_drains() {
  if (!config_.async_write) return;
  util::MutexLock lock(drain_mutex_);
  while (inflight_ != 0) drain_done_cv_.wait(lock);
  if (drain_error_) std::rethrow_exception(drain_error_);
}

int Writer::peak_inflight() const {
  util::MutexLock lock(drain_mutex_);
  return peak_inflight_;
}

void Writer::stop_drain_thread() {
  if (!drain_thread_.joinable()) return;
  {
    util::MutexLock lock(drain_mutex_);
    drain_stop_ = true;
  }
  drain_cv_.notify_all();
  drain_thread_.join();
}

void Writer::publish_index() {
  // The caller must have joined outstanding drains (wait_drains), so this
  // thread owns the drain-side index state (see the member comment).
  {
    util::MutexLock lock(mutex_);
    if (closed_) return;
    if (step_open_)
      throw UsageError("bp::Writer: publish_index with an open step");
  }
  // The same header bytes close() writes — the final container is
  // unchanged, the count just becomes visible to mid-run readers early.
  BinWriter header;
  header.u32(kIdxMagicV5);
  header.u32(std::uint32_t(index_.size()));
  fsim::FsClient root(fs_, 0);
  root.pwrite(idx_fd_, 0, header.buffer());
}

void Writer::close() {
  {
    util::MutexLock lock(mutex_);
    if (closed_) return;
    if (step_open_) throw UsageError("bp::Writer: close with an open step");
    closed_ = true;
  }
  // Join outstanding drains before touching the files; the worker owns the
  // offset tables and profiling accumulators until it goes quiet.  The
  // watchdog must outlive the drain join — it is what unwedges a stalled
  // lane so the join can complete.
  stop_drain_thread();
  stop_watchdog_thread();

  util::MutexLock lock(mutex_);
  fsim::FsClient root(fs_, 0);
  // Patch the md.idx header with the final step count.
  BinWriter header;
  header.u32(kIdxMagicV5);
  header.u32(std::uint32_t(index_.size()));
  root.pwrite(idx_fd_, 0, header.buffer());

  // Footer index (format v6): the complete step records appended after the
  // last metadata block, then a fixed trailer pointing back at them.  A
  // reader opens from the trailer in O(1) seeks; md.idx entries all point
  // below md_offset_, so the v5 scan path is unaffected by the tail.
  {
    const std::vector<std::uint8_t> footer = encode_footer(footer_steps_);
    BinWriter trailer;
    trailer.u64(md_offset_);
    trailer.u64(footer.size());
    trailer.u32(crc32c(footer));
    trailer.u32(kFtrMagic);
    root.pwrite(md_fd_, md_offset_, footer);
    root.pwrite(md_fd_, md_offset_ + footer.size(), trailer.buffer());
  }

  if (config_.engine == EngineType::bp5) {
    // BP5's second metadata file: a duplicate of the index for fast open.
    const auto mmd = encode_index(index_);
    root.write_file(path_ + "/mmd.0", mmd);
  }

  if (config_.profiling) {
    Json profile{JsonObject{}};
    profile["engine"] = engine_name(config_.engine);
    profile["aggregators"] = num_aggregators_;
    profile["ranks"] = nranks_;
    profile["steps"] = steps_written_;
    profile["async_write"] = config_.async_write;
    if (config_.aggregation != "flat" || config_.topology != "flat") {
      // Gated so flat-on-flat profiling.json stays byte-identical to the
      // pre-topology writer's output.
      profile["aggregation"] = config_.aggregation;
      profile["topology"] = config_.topology;
      profile["nodes"] = mapper_.nodes();
    }
    profile["transport_0"]["memcopy_us"] = memcopy_us_total_;
    profile["transport_0"]["compress_us"] = compress_us_total_;
    // Overlapped drain-lane time, kept apart from the critical-path
    // memcopy/compress numbers (zero without async_write).
    profile["transport_0"]["drain_us"] = drain_us_total_;
    // Per-chunk CRC32C cost (format v5 end-to-end integrity).
    profile["transport_0"]["crc_us"] = crc_us_total_;
    profile["transport_0"]["raw_bytes"] = raw_bytes_total_;
    profile["transport_0"]["stored_bytes"] = stored_bytes_total_;
    if (config_.io_batch_depth > 0) {
      // Gated so per-op containers keep the legacy profiling.json.
      profile["transport_0"]["io_batch_depth"] = config_.io_batch_depth;
      profile["transport_0"]["coalesce_writes"] = config_.coalesce_writes;
    }
    if (zero_copy_chunks_total_ > 0) {
      // Fig 8 extension: copies per path.  Gated so staged-only containers
      // keep the legacy profile byte-for-byte.
      profile["transport_0"]["zero_copy_chunks"] = zero_copy_chunks_total_;
      profile["transport_0"]["stage_copies"] = stage_copies_total_;
    }
    if (config_.drain_timeout_ms > 0) {
      const WatchdogStats wd = watchdog_stats();
      profile["transport_0"]["drain_timeouts"] = wd.timeouts;
      profile["transport_0"]["drain_retries"] = wd.retries;
      profile["transport_0"]["steps_abandoned"] = wd.steps_abandoned;
    }
    const std::string text = profile.dump(2);
    root.write_file(path_ + "/profiling.json",
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(text.data()),
                        text.size()));
  }

  for (std::size_t a = 0; a < data_fds_.size(); ++a) {
    fsim::FsClient client(fs_, fsim::ClientId(leader_of(int(a))));
    client.fsync(data_fds_[a]);
    client.close(data_fds_[a]);
  }
  root.close(md_fd_);
  root.close(idx_fd_);
  // Surface the first drain failure to the caller, after the container has
  // been closed out (the md.idx count still reflects only drained steps).
  // The drain worker has been joined, but the error slot is drain-lock
  // state like any other — read it under its lock rather than relying on
  // the join's happens-before alone.
  util::MutexLock dlock(drain_mutex_);
  if (drain_error_) std::rethrow_exception(drain_error_);
}

}  // namespace bitio::bp
