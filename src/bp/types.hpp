#pragma once
// Core vocabulary of the miniBP engine: datatypes, extents, variable and
// chunk descriptors.  Mirrors the slice of ADIOS2's data model the paper's
// workflow needs: n-dimensional variables with global shape, per-rank
// (offset, count) chunks, steps, and attributes.

#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace bitio::bp {

using Dims = std::vector<std::uint64_t>;

enum class Datatype : std::uint8_t {
  uint8 = 0,
  int32 = 1,
  uint64 = 2,
  float32 = 3,
  float64 = 4,
};

inline std::size_t dtype_size(Datatype t) {
  switch (t) {
    case Datatype::uint8: return 1;
    case Datatype::int32: return 4;
    case Datatype::uint64: return 8;
    case Datatype::float32: return 4;
    case Datatype::float64: return 8;
  }
  throw UsageError("bp: unknown datatype");
}

inline const char* dtype_name(Datatype t) {
  switch (t) {
    case Datatype::uint8: return "uint8";
    case Datatype::int32: return "int32";
    case Datatype::uint64: return "uint64";
    case Datatype::float32: return "float";
    case Datatype::float64: return "double";
  }
  return "?";
}

/// Map C++ element types to Datatype tags.
template <typename T> struct datatype_of;
template <> struct datatype_of<std::uint8_t> {
  static constexpr Datatype value = Datatype::uint8;
};
template <> struct datatype_of<std::int32_t> {
  static constexpr Datatype value = Datatype::int32;
};
template <> struct datatype_of<std::uint64_t> {
  static constexpr Datatype value = Datatype::uint64;
};
template <> struct datatype_of<float> {
  static constexpr Datatype value = Datatype::float32;
};
template <> struct datatype_of<double> {
  static constexpr Datatype value = Datatype::float64;
};

inline std::uint64_t element_count(const Dims& dims) {
  return std::accumulate(dims.begin(), dims.end(), std::uint64_t(1),
                         std::multiplies<>());
}

/// A validated view of one rank-local chunk: element type, raw bytes, and
/// placement in the global array.  This is the argument object the write
/// path passes around instead of loose (dtype, span, offset, count) packs;
/// the constructor is the single point that checks byte length against
/// count * dtype, and ChunkView::of is the one reinterpret_cast site.
/// The view does not own the bytes — like ADIOS2's deferred Put, the
/// referenced data must stay valid until the put is consumed.
class ChunkView {
public:
  ChunkView(Datatype dtype, std::span<const std::uint8_t> bytes, Dims offset,
            Dims count)
      : dtype_(dtype),
        bytes_(bytes),
        offset_(std::move(offset)),
        count_(std::move(count)) {
    if (offset_.size() != count_.size())
      throw UsageError("bp::ChunkView: offset/count dimension mismatch");
    if (bytes_.size() != element_count(count_) * dtype_size(dtype_))
      throw UsageError(
          "bp::ChunkView: byte size does not match count * sizeof(dtype)");
  }

  template <typename T>
  static ChunkView of(std::span<const T> data, Dims offset, Dims count) {
    return ChunkView(datatype_of<T>::value,
                     std::span<const std::uint8_t>(
                         reinterpret_cast<const std::uint8_t*>(data.data()),
                         data.size_bytes()),
                     std::move(offset), std::move(count));
  }

  Datatype dtype() const { return dtype_; }
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  const Dims& offset() const { return offset_; }
  const Dims& count() const { return count_; }

private:
  Datatype dtype_;
  std::span<const std::uint8_t> bytes_;
  Dims offset_;
  Dims count_;
};

/// Internal-construction tag: bp::make_engine and the Writer::open /
/// Reader::open named constructors build Writers/Readers through overloads
/// carrying this tag, keeping the untagged constructor surface empty (the
/// factory is the supported entry point — see src/bp/engine.hpp).
struct ForEngineFactory {
  explicit ForEngineFactory() = default;
};

/// One stored block of a variable: where it sits in the global array and
/// where its (possibly compressed) bytes live inside a subfile.
struct ChunkRecord {
  Dims offset;                 // position in the global array
  Dims count;                  // elements per dimension
  std::uint32_t writer_rank = 0;
  std::uint32_t subfile = 0;   // data.<subfile>
  std::uint64_t file_offset = 0;
  std::uint64_t stored_bytes = 0;  // bytes on disk (after operator)
  std::uint64_t raw_bytes = 0;     // bytes before operator
  std::string operator_name;       // "" = none
  // Per-chunk value statistics (ADIOS2 keeps these in the metadata for
  // query/selection support — "rapid metadata extraction").  Zero for
  // non-numeric or synthetic chunks.
  double stat_min = 0.0;
  double stat_max = 0.0;
  // End-to-end integrity (format v5): CRC32C of the *stored* bytes,
  // computed at write time and re-checked on read.  has_crc is false for
  // synthetic (size-only) chunks and for containers written in the v4
  // format, which remain readable without verification.
  std::uint32_t crc32c = 0;
  bool has_crc = false;
  // Content identity (format v6): FNV-1a 64 of the *raw* (pre-operator)
  // bytes.  The incremental-checkpoint layer compares these across epochs
  // to detect unchanged blocks without reading any data back.  False for
  // synthetic chunks and for pre-v6 containers.
  std::uint64_t content_hash = 0;
  bool has_content_hash = false;
};

/// Per-step record of one variable.
struct VarRecord {
  std::string name;
  Datatype dtype = Datatype::uint8;
  Dims shape;                  // global extent
  std::vector<ChunkRecord> chunks;
};

/// Attribute value: ADIOS2 supports more, we need these three.
using AttrValue = std::variant<std::string, double, std::uint64_t>;

/// Everything recorded for one step in md.0.
struct StepRecord {
  std::uint64_t step = 0;
  std::vector<VarRecord> variables;
  std::vector<std::pair<std::string, AttrValue>> attributes;
};

/// md.idx entry: where a step's metadata lives inside md.0.  v5 entries
/// additionally carry the CRC32C of the referenced metadata block.
struct IndexEntry {
  std::uint64_t step = 0;
  std::uint64_t md_offset = 0;
  std::uint64_t md_length = 0;
  std::uint32_t md_crc = 0;
  bool has_crc = false;
};

}  // namespace bitio::bp
