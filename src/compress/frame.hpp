#pragma once
// Little-endian frame (de)serialisation helpers shared by every cz codec
// (codec.cpp, parallel.cpp) and their tests.  Formerly private to codec.cpp;
// hoisted so the parallel pipeline frames blocks with the same primitives.

#include <cstdint>

#include "compress/codec.hpp"
#include "util/error.hpp"

namespace bitio::cz {

inline void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

/// Overwrite 4 bytes at `pos` in-place (used to patch reserved table slots
/// once the value is known, e.g. per-block compressed sizes).
inline void patch_u32(Bytes& out, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[pos + std::size_t(i)] = std::uint8_t(v >> (8 * i));
}

/// Bounds-checked forward reader over a frame; every primitive throws
/// FormatError instead of reading past the end.
class Cursor {
public:
  explicit Cursor(ByteSpan data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_++]) << (8 * i);
    return v;
  }
  ByteSpan bytes(std::size_t n) {
    need(n);
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  ByteSpan rest() { return data_.subspan(pos_); }
  std::size_t remaining() const { return data_.size() - pos_; }

private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw FormatError("codec: truncated frame");
  }
  ByteSpan data_;
  std::size_t pos_ = 0;
};

inline void check_magic(Cursor& cur, const char* magic) {
  for (int i = 0; i < 4; ++i)
    if (cur.u8() != std::uint8_t(magic[i]))
      throw FormatError("codec: bad frame magic");
}

}  // namespace bitio::cz
