#include "compress/reference.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "compress/frame.hpp"
#include "util/error.hpp"

namespace bitio::cz {

// ------------------------------------------------------------- shuffle ----

Bytes seed_shuffle(ByteSpan input, std::size_t typesize) {
  if (typesize == 0) throw UsageError("shuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;  // whole elements
  Bytes out(input.size());
  for (std::size_t b = 0; b < typesize; ++b) {
    const std::size_t base = b * n;
    for (std::size_t i = 0; i < n; ++i) out[base + i] = input[i * typesize + b];
  }
  for (std::size_t i = n * typesize; i < input.size(); ++i) out[i] = input[i];
  return out;
}

Bytes seed_unshuffle(ByteSpan input, std::size_t typesize) {
  if (typesize == 0) throw UsageError("unshuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;
  Bytes out(input.size());
  for (std::size_t b = 0; b < typesize; ++b) {
    const std::size_t base = b * n;
    for (std::size_t i = 0; i < n; ++i) out[i * typesize + b] = input[base + i];
  }
  for (std::size_t i = n * typesize; i < input.size(); ++i) out[i] = input[i];
  return out;
}

// ------------------------------------------------------------------ lz ----

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;

inline std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_length(Bytes& out, std::size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

void emit_sequence(Bytes& out, const std::uint8_t* lit, std::size_t lit_len,
                   std::size_t offset, std::size_t match_len) {
  const bool has_match = match_len >= kMinMatch;
  const std::size_t mstored = has_match ? match_len - kMinMatch : 0;
  const std::uint8_t lit_nib =
      static_cast<std::uint8_t>(lit_len >= 15 ? 15 : lit_len);
  const std::uint8_t mat_nib =
      static_cast<std::uint8_t>(has_match ? (mstored >= 15 ? 15 : mstored) : 0);
  out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | mat_nib));
  if (lit_nib == 15) emit_length(out, lit_len - 15);
  out.insert(out.end(), lit, lit + lit_len);
  if (has_match) {
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (mat_nib == 15) emit_length(out, mstored - 15);
  }
}

}  // namespace

Bytes seed_lz_compress_block(ByteSpan input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const std::uint8_t* const base = input.data();
  const std::size_t n = input.size();

  if (n < kMinMatch + 1) {
    emit_sequence(out, base, n, 0, 0);
    return out;
  }

  std::vector<std::uint32_t> table(1u << kHashBits, 0xFFFFFFFFu);
  std::size_t pos = 0;
  std::size_t anchor = 0;
  const std::size_t limit = n - kMinMatch;

  while (pos <= limit) {
    const std::uint32_t h = hash4(read32(base + pos));
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0xFFFFFFFFu && pos - cand <= kMaxOffset &&
        read32(base + cand) == read32(base + pos)) {
      std::size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      emit_sequence(out, base + anchor, pos - anchor, pos - cand, len);
      pos += len;
      anchor = pos;
      if (pos <= limit) table[hash4(read32(base + pos - 2))] =
          static_cast<std::uint32_t>(pos - 2);
    } else {
      ++pos;
    }
  }
  emit_sequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

Bytes seed_lz_decompress_block(ByteSpan block, std::size_t original_size) {
  Bytes out;
  out.reserve(original_size);
  std::size_t ip = 0;
  const std::size_t in_size = block.size();

  auto read_byte = [&]() -> std::uint8_t {
    if (ip >= in_size) throw FormatError("lz: truncated block");
    return block[ip++];
  };
  auto read_ext = [&](std::size_t start) {
    std::size_t len = start;
    if (start == 15) {
      std::uint8_t b;
      do {
        b = read_byte();
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip < in_size) {
    const std::uint8_t token = read_byte();
    const std::size_t lit_len = read_ext(token >> 4);
    if (ip + lit_len > in_size) throw FormatError("lz: literal overrun");
    out.insert(out.end(), block.begin() + long(ip),
               block.begin() + long(ip + lit_len));
    ip += lit_len;
    if (ip >= in_size) break;
    const std::size_t lo = read_byte();
    const std::size_t hi = read_byte();
    const std::size_t offset = lo | (hi << 8);
    const std::size_t match_len = read_ext(token & 0x0F) + kMinMatch;
    if (offset == 0 || offset > out.size())
      throw FormatError("lz: bad match offset");
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != original_size)
    throw FormatError("lz: size mismatch after decode (got " +
                      std::to_string(out.size()) + ", want " +
                      std::to_string(original_size) + ")");
  return out;
}

// ------------------------------------------------------------- huffman ----

namespace {

constexpr int kMaxCodeLen = 15;

std::vector<std::uint32_t> ref_canonical_codes(const std::vector<int>& lengths) {
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  std::vector<std::size_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lengths[a] < lengths[b];
                   });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (std::size_t idx : order) {
    if (lengths[idx] == 0) continue;
    code <<= (lengths[idx] - prev_len);
    codes[idx] = code;
    ++code;
    prev_len = lengths[idx];
  }
  return codes;
}

class RefBitReader {
public:
  explicit RefBitReader(ByteSpan data) : data_(data) {}
  std::uint32_t get(int count) {
    std::uint32_t value = 0;
    for (int i = 0; i < count; ++i) {
      if (byte_pos_ >= data_.size())
        throw FormatError("huffman: bit stream truncated");
      const int bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
      value = (value << 1) | std::uint32_t(bit);
      if (++bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
      }
    }
    return value;
  }

private:
  ByteSpan data_;
  std::size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

}  // namespace

std::vector<std::uint16_t> seed_huffman_decode(ByteSpan data) {
  std::size_t pos = 0;
  auto need = [&](std::size_t k) {
    if (pos + k > data.size()) throw FormatError("huffman: truncated header");
  };
  need(6);
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) count |= std::uint32_t(data[pos++]) << (8 * i);
  std::size_t alphabet_size = data[pos] | (std::size_t(data[pos + 1]) << 8);
  pos += 2;
  if (alphabet_size == 0) alphabet_size = 65536;

  std::vector<int> lengths(alphabet_size, 0);
  need((alphabet_size + 1) / 2);
  for (std::size_t i = 0; i < alphabet_size; i += 2) {
    const std::uint8_t b = data[pos++];
    lengths[i] = b & 0x0F;
    if (i + 1 < alphabet_size) lengths[i + 1] = b >> 4;
  }
  (void)ref_canonical_codes(lengths);  // kept: seed code computed these too

  std::vector<std::size_t> order(alphabet_size);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return lengths[a] < lengths[b];
                   });
  std::vector<std::uint32_t> first_code(kMaxCodeLen + 2, 0);
  std::vector<std::uint32_t> first_index(kMaxCodeLen + 2, 0);
  std::vector<std::uint16_t> symbol_of(alphabet_size);
  {
    std::uint32_t idx = 0;
    for (std::size_t s : order) {
      if (lengths[s] == 0) continue;
      symbol_of[idx] = std::uint16_t(s);
      ++idx;
    }
    std::uint32_t running = 0;
    std::uint32_t code = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      code <<= 1;
      first_code[std::size_t(len)] = code;
      first_index[std::size_t(len)] = running;
      std::uint32_t count_len = 0;
      for (std::size_t s = 0; s < alphabet_size; ++s)
        if (lengths[s] == len) ++count_len;
      code += count_len;
      running += count_len;
    }
    first_index[kMaxCodeLen + 1] = running;
  }

  RefBitReader reader(data.subspan(pos));
  std::vector<std::uint16_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    int len = 0;
    while (true) {
      code = (code << 1) | reader.get(1);
      ++len;
      if (len > kMaxCodeLen) throw FormatError("huffman: bad code");
      const std::uint32_t count_len =
          first_index[std::size_t(len) + 1] - first_index[std::size_t(len)];
      const std::uint32_t next_first = first_code[std::size_t(len)];
      if (count_len > 0 && code >= next_first &&
          code < next_first + count_len) {
        out.push_back(
            symbol_of[first_index[std::size_t(len)] + (code - next_first)]);
        break;
      }
    }
  }
  return out;
}

// --------------------------------------------------------------- blosc ----

Bytes seed_blosc_compress(ByteSpan input, std::size_t typesize) {
  if (typesize == 0) typesize = 1;
  if (typesize > 255) throw UsageError("blosc: typesize too large");
  constexpr std::size_t kChunk = 256 * 1024;
  Bytes out;
  out.reserve(input.size() / 2 + 32);
  out.insert(out.end(), {'B', 'L', 'L', '1'});
  out.push_back(std::uint8_t(typesize));
  put_u64(out, input.size());
  const std::uint32_t nchunks =
      std::uint32_t((input.size() + kChunk - 1) / kChunk);
  put_u32(out, nchunks);
  for (std::uint32_t c = 0; c < nchunks; ++c) {
    const std::size_t off = std::size_t(c) * kChunk;
    const std::size_t len = std::min(kChunk, input.size() - off);
    ByteSpan chunk = input.subspan(off, len);
    Bytes shuffled = seed_shuffle(chunk, typesize);
    Bytes packed = seed_lz_compress_block(shuffled);
    put_u32(out, std::uint32_t(len));
    if (packed.size() < len) {
      out.push_back(1);
      put_u32(out, std::uint32_t(packed.size()));
      out.insert(out.end(), packed.begin(), packed.end());
    } else {
      out.push_back(0);
      put_u32(out, std::uint32_t(len));
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
  }
  return out;
}

}  // namespace bitio::cz
