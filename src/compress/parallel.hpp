#pragma once
// Block-parallel compression pipeline (the real Blosc `nthreads` design):
// split the input into fixed-size independent blocks, compress each with the
// wrapped inner codec, and frame them with a block table so decompression
// can fan out too.
//
// CZP1 frame layout (little-endian):
//   'C' 'Z' 'P' '1'
//   u8  version            (currently 1 — satellite fix: frames are now
//                           versioned so the format can evolve)
//   u64 orig_size
//   u32 block_size         (bytes of input per block; last block may be short)
//   u32 nblocks
//   u32 enc_len[nblocks]   (compressed size of each block's inner frame)
//   inner frames, concatenated (each self-framing: RAW1/BLL1/BZL1)
//
// Determinism guarantee: the frame bytes depend only on (input, inner codec,
// block_size) — never on the thread count or schedule.  Blocks are
// compressed independently (per-thread scratch is reset per block) and
// stitched in block order, so `threads=1` and `threads=64` produce identical
// bytes.  Tests assert this byte-for-byte.
//
// decompress() also accepts every legacy single-block frame (RAW1/BLL1/
// BZL1), so readers need no migration: cz::decompress_frame() dispatches on
// the magic.

#include <memory>

#include "compress/buffer_pool.hpp"
#include "compress/codec.hpp"

namespace bitio::util {
class ThreadPool;
}

namespace bitio::cz {

/// Decode any cz frame by magic: CZP1 (block-parallel, decoded with up to
/// `threads` lanes) or a legacy single-block RAW1/BLL1/BZL1 frame (decoded
/// serially by its own codec).  Throws FormatError on corruption.
Bytes decompress_frame(ByteSpan frame, int threads = 1);

class ParallelCodec final : public Codec {
 public:
  /// Wrap `inner`, compressing `block_bytes`-sized blocks on up to
  /// `threads` lanes of `pool` with per-block buffers from `buffers`.
  /// Null pool/buffers select the process-wide shared instances.
  ParallelCodec(std::unique_ptr<Codec> inner, int threads,
                std::size_t block_bytes, util::ThreadPool* pool = nullptr,
                BufferPool* buffers = nullptr);

  std::string name() const override { return inner_->name(); }

  Bytes compress(ByteSpan input) const override;
  void compress_append(ByteSpan input, Bytes& out) const override;

  /// Handles CZP1 and legacy frames alike (see decompress_frame).
  Bytes decompress(ByteSpan frame) const override;

  // The storage model charges parallel wall time via
  // fsim::parallel_cpu_seconds() from these serial figures.
  double compress_speed_bps() const override {
    return inner_->compress_speed_bps();
  }
  double decompress_speed_bps() const override {
    return inner_->decompress_speed_bps();
  }

  int threads() const { return threads_; }
  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t block_count(std::size_t input_size) const {
    return input_size == 0 ? 0 : (input_size + block_bytes_ - 1) / block_bytes_;
  }

 private:
  std::unique_ptr<Codec> inner_;
  int threads_;
  std::size_t block_bytes_;
  util::ThreadPool* pool_;
  BufferPool* buffers_;
};

/// Convenience factory; clamps threads to >= 1 and block_bytes to >= 4 KiB.
std::unique_ptr<Codec> make_parallel_codec(std::unique_ptr<Codec> inner,
                                           int threads,
                                           std::size_t block_bytes);

}  // namespace bitio::cz
