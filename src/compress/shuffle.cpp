#include "compress/shuffle.hpp"

#include <cstring>

#include "util/error.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define BITIO_SHUFFLE_X86 1
#include <immintrin.h>
#endif

namespace bitio::cz {

namespace {

#ifdef BITIO_SHUFFLE_X86
// SIMD kernels for the dominant particle layout (typesize 4, float records).
// Compiled for SSSE3 regardless of the project's baseline flags and selected
// at runtime via cpuid, so the binary still runs on bare SSE2 machines.
// Both are pure byte permutations — output is bit-identical to the scalar
// path, preserving frame determinism.

bool cpu_has_ssse3() {
  static const bool ok = __builtin_cpu_supports("ssse3");
  return ok;
}

__attribute__((target("ssse3"))) void shuffle4_ssse3(const std::uint8_t* in,
                                                     std::size_t n,
                                                     std::uint8_t* out) {
  // 16 elements (64 bytes) per iteration: group each register's bytes by
  // plane, then gather plane dwords across the four registers.
  const __m128i group = _mm_setr_epi8(0, 4, 8, 12, 1, 5, 9, 13,  //
                                      2, 6, 10, 14, 3, 7, 11, 15);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const std::uint8_t* p = in + i * 4;
    __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    r0 = _mm_shuffle_epi8(r0, group);  // [b0 x4][b1 x4][b2 x4][b3 x4]
    r1 = _mm_shuffle_epi8(r1, group);
    r2 = _mm_shuffle_epi8(r2, group);
    r3 = _mm_shuffle_epi8(r3, group);
    const __m128i t0 = _mm_unpacklo_epi32(r0, r1);
    const __m128i t1 = _mm_unpackhi_epi32(r0, r1);
    const __m128i t2 = _mm_unpacklo_epi32(r2, r3);
    const __m128i t3 = _mm_unpackhi_epi32(r2, r3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_unpacklo_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n + i),
                     _mm_unpackhi_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * n + i),
                     _mm_unpacklo_epi64(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 3 * n + i),
                     _mm_unpackhi_epi64(t1, t3));
  }
  for (; i < n; ++i) {
    const std::uint8_t* e = in + i * 4;
    for (std::size_t b = 0; b < 4; ++b) out[b * n + i] = e[b];
  }
}

__attribute__((target("ssse3"))) void unshuffle4_ssse3(const std::uint8_t* in,
                                                       std::size_t n,
                                                       std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i q0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128i q1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + n + i));
    const __m128i q2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * n + i));
    const __m128i q3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 3 * n + i));
    const __m128i t0 = _mm_unpacklo_epi8(q0, q1);  // b0b1 pairs, e0..e7
    const __m128i t1 = _mm_unpackhi_epi8(q0, q1);
    const __m128i t2 = _mm_unpacklo_epi8(q2, q3);  // b2b3 pairs, e0..e7
    const __m128i t3 = _mm_unpackhi_epi8(q2, q3);
    std::uint8_t* p = out + i * 4;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                     _mm_unpacklo_epi16(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 16),
                     _mm_unpackhi_epi16(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 32),
                     _mm_unpacklo_epi16(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 48),
                     _mm_unpackhi_epi16(t1, t3));
  }
  for (; i < n; ++i) {
    std::uint8_t* e = out + i * 4;
    for (std::size_t b = 0; b < 4; ++b) e[b] = in[b * n + i];
  }
}
#endif  // BITIO_SHUFFLE_X86

// Fixed-width single-pass kernels: one sequential read stream fanned out to
// T sequential write streams (shuffle) or gathered back (unshuffle).  The
// seed code looped plane-outer, re-reading the whole input T times with a
// stride-T access pattern; reading each byte exactly once and keeping every
// stream sequential is what makes this cache-friendly, and the constant
// element width lets the compiler unroll and vectorise the inner loop.
template <std::size_t T>
void shuffle_fixed(const std::uint8_t* in, std::size_t n, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t* e = in + i * T;
    for (std::size_t b = 0; b < T; ++b) out[b * n + i] = e[b];
  }
}

template <std::size_t T>
void unshuffle_fixed(const std::uint8_t* in, std::size_t n, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t* e = out + i * T;
    for (std::size_t b = 0; b < T; ++b) e[b] = in[b * n + i];
  }
}

// Generic width: transpose in element tiles sized to keep the working set
// (kTile * typesize bytes of input plus one cache line per plane) in L1.
constexpr std::size_t kTile = 1024;

void shuffle_generic(const std::uint8_t* in, std::size_t n,
                     std::size_t typesize, std::uint8_t* out) {
  for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
    const std::size_t i1 = i0 + kTile < n ? i0 + kTile : n;
    for (std::size_t b = 0; b < typesize; ++b) {
      const std::uint8_t* src = in + i0 * typesize + b;
      std::uint8_t* dst = out + b * n + i0;
      for (std::size_t i = i0; i < i1; ++i, src += typesize) *dst++ = *src;
    }
  }
}

void unshuffle_generic(const std::uint8_t* in, std::size_t n,
                       std::size_t typesize, std::uint8_t* out) {
  for (std::size_t i0 = 0; i0 < n; i0 += kTile) {
    const std::size_t i1 = i0 + kTile < n ? i0 + kTile : n;
    for (std::size_t b = 0; b < typesize; ++b) {
      const std::uint8_t* src = in + b * n + i0;
      std::uint8_t* dst = out + i0 * typesize + b;
      for (std::size_t i = i0; i < i1; ++i, dst += typesize) *dst = *src++;
    }
  }
}

}  // namespace

void shuffle_into(ByteSpan input, std::size_t typesize, std::uint8_t* out) {
  if (typesize == 0) throw UsageError("shuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;  // whole elements
  const std::uint8_t* in = input.data();
  switch (typesize) {
    case 1: std::memcpy(out, in, n); break;
    case 2: shuffle_fixed<2>(in, n, out); break;
    case 4:
#ifdef BITIO_SHUFFLE_X86
      if (cpu_has_ssse3()) {
        shuffle4_ssse3(in, n, out);
        break;
      }
#endif
      shuffle_fixed<4>(in, n, out);
      break;
    case 8: shuffle_fixed<8>(in, n, out); break;
    case 16: shuffle_fixed<16>(in, n, out); break;
    default: shuffle_generic(in, n, typesize, out); break;
  }
  // Partial trailing element is passed through unshuffled.
  const std::size_t body = n * typesize;
  if (body < input.size()) std::memcpy(out + body, in + body, input.size() - body);
}

void unshuffle_into(ByteSpan input, std::size_t typesize, std::uint8_t* out) {
  if (typesize == 0) throw UsageError("unshuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;
  const std::uint8_t* in = input.data();
  switch (typesize) {
    case 1: std::memcpy(out, in, n); break;
    case 2: unshuffle_fixed<2>(in, n, out); break;
    case 4:
#ifdef BITIO_SHUFFLE_X86
      if (cpu_has_ssse3()) {
        unshuffle4_ssse3(in, n, out);
        break;
      }
#endif
      unshuffle_fixed<4>(in, n, out);
      break;
    case 8: unshuffle_fixed<8>(in, n, out); break;
    case 16: unshuffle_fixed<16>(in, n, out); break;
    default: unshuffle_generic(in, n, typesize, out); break;
  }
  const std::size_t body = n * typesize;
  if (body < input.size()) std::memcpy(out + body, in + body, input.size() - body);
}

Bytes shuffle(ByteSpan input, std::size_t typesize) {
  Bytes out(input.size());
  shuffle_into(input, typesize, out.data());
  return out;
}

Bytes unshuffle(ByteSpan input, std::size_t typesize) {
  Bytes out(input.size());
  unshuffle_into(input, typesize, out.data());
  return out;
}

}  // namespace bitio::cz
