#include "compress/shuffle.hpp"

#include "util/error.hpp"

namespace bitio::cz {

Bytes shuffle(ByteSpan input, std::size_t typesize) {
  if (typesize == 0) throw UsageError("shuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;  // whole elements
  Bytes out(input.size());
  for (std::size_t b = 0; b < typesize; ++b) {
    const std::size_t base = b * n;
    for (std::size_t i = 0; i < n; ++i) out[base + i] = input[i * typesize + b];
  }
  // Partial trailing element is passed through unshuffled.
  for (std::size_t i = n * typesize; i < input.size(); ++i) out[i] = input[i];
  return out;
}

Bytes unshuffle(ByteSpan input, std::size_t typesize) {
  if (typesize == 0) throw UsageError("unshuffle: typesize must be > 0");
  const std::size_t n = input.size() / typesize;
  Bytes out(input.size());
  for (std::size_t b = 0; b < typesize; ++b) {
    const std::size_t base = b * n;
    for (std::size_t i = 0; i < n; ++i) out[i * typesize + b] = input[base + i];
  }
  for (std::size_t i = n * typesize; i < input.size(); ++i) out[i] = input[i];
  return out;
}

}  // namespace bitio::cz
