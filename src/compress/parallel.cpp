#include "compress/parallel.hpp"

#include <algorithm>
#include <cstring>

#include "compress/frame.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace bitio::cz {

namespace {

constexpr std::uint8_t kFrameVersion = 1;
constexpr std::size_t kMinBlockBytes = 4 * 1024;

bool has_magic(ByteSpan frame, const char* magic) {
  if (frame.size() < 4) return false;
  for (int i = 0; i < 4; ++i)
    if (frame[std::size_t(i)] != std::uint8_t(magic[i])) return false;
  return true;
}

/// Decode one CZP1 frame with up to `threads` lanes.
Bytes decompress_czp1(ByteSpan frame, int threads) {
  Cursor cur(frame);
  check_magic(cur, "CZP1");
  const std::uint8_t version = cur.u8();
  if (version != kFrameVersion)
    throw FormatError("czp: unsupported frame version " +
                      std::to_string(version));
  const std::uint64_t orig_size = cur.u64();
  const std::uint64_t block_size = cur.u32();
  const std::uint64_t nblocks = cur.u32();

  // Geometry sanity: the block count must be exactly what orig_size and
  // block_size imply, or the per-block output offsets below are garbage.
  if (orig_size == 0) {
    if (nblocks != 0) throw FormatError("czp: bad block count");
  } else {
    if (block_size == 0) throw FormatError("czp: bad block size");
    const std::uint64_t want = (orig_size + block_size - 1) / block_size;
    if (nblocks != want) throw FormatError("czp: bad block count");
  }

  std::vector<std::uint32_t> enc_len(nblocks);
  for (std::uint64_t b = 0; b < nblocks; ++b) enc_len[b] = cur.u32();
  std::vector<ByteSpan> bodies(nblocks);
  for (std::uint64_t b = 0; b < nblocks; ++b) bodies[b] = cur.bytes(enc_len[b]);
  if (cur.remaining() != 0) throw FormatError("czp: trailing bytes in frame");

  Bytes out(orig_size);
  auto decode_block = [&](std::size_t b) {
    const std::uint64_t off = std::uint64_t(b) * block_size;
    const std::size_t want =
        std::size_t(std::min<std::uint64_t>(block_size, orig_size - off));
    // Inner frames are self-framing legacy frames; decode serially per
    // block (the parallelism lives at this level).
    Bytes plain = decompress_frame(bodies[b], 1);
    if (plain.size() != want) throw FormatError("czp: block size mismatch");
    std::memcpy(out.data() + off, plain.data(), want);
  };
  if (nblocks <= 1 || threads <= 1) {
    for (std::size_t b = 0; b < nblocks; ++b) decode_block(b);
  } else {
    util::ThreadPool::shared().parallel_for(std::size_t(nblocks), threads,
                                            decode_block);
  }
  return out;
}

}  // namespace

Bytes decompress_frame(ByteSpan frame, int threads) {
  if (has_magic(frame, "CZP1")) return decompress_czp1(frame, threads);
  if (has_magic(frame, "RAW1")) return make_none_codec()->decompress(frame);
  if (has_magic(frame, "BLL1")) return make_blosc_codec()->decompress(frame);
  if (has_magic(frame, "BZL1")) return make_bzip2_codec()->decompress(frame);
  throw FormatError("codec: bad frame magic");
}

ParallelCodec::ParallelCodec(std::unique_ptr<Codec> inner, int threads,
                             std::size_t block_bytes, util::ThreadPool* pool,
                             BufferPool* buffers)
    : inner_(std::move(inner)),
      threads_(std::max(1, threads)),
      block_bytes_(std::max(kMinBlockBytes, block_bytes)),
      pool_(pool ? pool : &util::ThreadPool::shared()),
      buffers_(buffers ? buffers : &BufferPool::shared()) {
  if (!inner_) throw UsageError("parallel codec: null inner codec");
}

void ParallelCodec::compress_append(ByteSpan input, Bytes& out) const {
  const std::size_t nblocks = block_count(input.size());
  out.insert(out.end(), {'C', 'Z', 'P', '1'});
  out.push_back(kFrameVersion);
  put_u64(out, input.size());
  put_u32(out, std::uint32_t(block_bytes_));
  put_u32(out, std::uint32_t(nblocks));
  const std::size_t table_pos = out.size();
  out.insert(out.end(), nblocks * 4, 0);  // block table, patched below

  auto block_span = [&](std::size_t b) {
    const std::size_t off = b * block_bytes_;
    return input.subspan(off, std::min(block_bytes_, input.size() - off));
  };

  if (nblocks <= 1 || threads_ <= 1) {
    // Serial fast path: compress every block straight into the frame —
    // zero intermediate buffers — and patch its table slot afterwards.
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t start = out.size();
      inner_->compress_append(block_span(b), out);
      patch_u32(out, table_pos + 4 * b, std::uint32_t(out.size() - start));
    }
    return;
  }

  // Parallel path: each lane compresses its blocks into pooled scratch;
  // the frames are stitched in block order afterwards, so the output is
  // byte-identical to the serial path (determinism guarantee).
  std::vector<Bytes> parts(nblocks);
  pool_->parallel_for(nblocks, threads_, [&](std::size_t b) {
    Bytes scratch = buffers_->acquire_reserve(block_bytes_ / 2 + 64);
    inner_->compress_append(block_span(b), scratch);
    parts[b] = std::move(scratch);
  });
  for (std::size_t b = 0; b < nblocks; ++b) {
    patch_u32(out, table_pos + 4 * b, std::uint32_t(parts[b].size()));
    out.insert(out.end(), parts[b].begin(), parts[b].end());
    buffers_->release(std::move(parts[b]));
  }
}

Bytes ParallelCodec::compress(ByteSpan input) const {
  Bytes out;
  // Worst-case bound, so the serial path never reallocates mid-frame.
  out.reserve(input.size() + input.size() / 128 + 64);
  compress_append(input, out);
  return out;
}

Bytes ParallelCodec::decompress(ByteSpan frame) const {
  return decompress_frame(frame, threads_);
}

std::unique_ptr<Codec> make_parallel_codec(std::unique_ptr<Codec> inner,
                                           int threads,
                                           std::size_t block_bytes) {
  return std::make_unique<ParallelCodec>(std::move(inner), threads,
                                         block_bytes);
}

}  // namespace bitio::cz
