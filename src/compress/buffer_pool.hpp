#pragma once
// Size-classed recycling pool for the byte buffers of the write hot path.
//
// Every per-chunk buffer the bp::Writer marshalling/compression pipeline
// touches — staged put() payloads, per-aggregator aggregation buffers, the
// codec pipeline's per-block scratch — cycles through one of these pools,
// so a steady-state step performs no heap allocation: step N's acquires
// are served by step N-1's releases (the BP5 "BufferV" idea of reusing
// pinned marshalling slabs instead of malloc/free per Put).
//
// Buffers are plain std::vector<std::uint8_t> handed out by value: acquire()
// moves a recycled vector out of a freelist (or allocates on a miss) and
// release() moves it back, so the pool composes with every existing Bytes
// API with zero copies.  Capacity classes are powers of two; a released
// buffer joins the class its *capacity* fits, so buffers that grew while
// in use come back to the larger class.  Per-class depth is bounded —
// releases beyond the bound free the memory instead of hoarding it.
//
// hits()/misses() make the steady-state guarantee testable: after warmup
// the writer asserts a >= 99% hit rate (tests/bp_test.cpp) and the TSan
// suite hammers acquire/release from 8 threads.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::cz {

class BufferPool {
 public:
  /// Default per-class freelist depth.  Named so the config layer can
  /// validate against it (compress_threads beyond the depth would thrash
  /// the pool: every thread's scratch release past the bound deallocates).
  static constexpr std::size_t kDefaultMaxPerClass = 16;

  /// `max_per_class` bounds how many idle buffers each size class retains;
  /// releases past the bound deallocate (no unbounded hoarding).
  explicit BufferPool(std::size_t max_per_class = kDefaultMaxPerClass);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with size() == `size` and capacity of at least the size
  /// class that fits it.  Contents are unspecified (recycled bytes are not
  /// cleared — every caller overwrites them).
  std::vector<std::uint8_t> acquire(std::size_t size) EXCLUDES(mutex_);

  /// An empty buffer (size() == 0) with capacity() >= `capacity`, for
  /// append-style producers (aggregation buffers, codec frames).  Appends
  /// within the reserved capacity never reallocate.
  std::vector<std::uint8_t> acquire_reserve(std::size_t capacity)
      EXCLUDES(mutex_);

  /// Return a buffer to its capacity class.  Zero-capacity buffers (moved-
  /// from or synthetic-chunk placeholders) are ignored and not counted.
  void release(std::vector<std::uint8_t>&& buffer) EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t hits = 0;      // acquires served from a freelist
    std::uint64_t misses = 0;    // acquires that had to allocate
    std::uint64_t released = 0;  // buffers returned
    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : double(hits) / double(total);
    }
  };
  Stats stats() const EXCLUDES(mutex_);

  /// Zero the counters (not the freelists): lets a test warm the pool up,
  /// reset, and then assert the steady-state hit rate in isolation.
  void reset_stats() EXCLUDES(mutex_);

  /// Drop every idle buffer (memory back to the allocator).  Counters are
  /// kept; subsequent acquires miss until the pool re-warms.
  void trim() EXCLUDES(mutex_);

  /// Process-wide pool for call sites without a natural owner (standalone
  /// codec pipelines, benches).  bp::Writer owns a private pool instead so
  /// its hit-rate accounting is not polluted by other users.
  static BufferPool& shared();

 private:
  // Capacity classes: class k holds buffers of capacity exactly 2^k bytes,
  // k in [kMinClassBits, kMaxClassBits].  Requests above the largest class
  // are served unpooled (they would hoard too much memory); requests below
  // the smallest round up.
  static constexpr std::size_t kMinClassBits = 6;   // 64 B
  static constexpr std::size_t kMaxClassBits = 26;  // 64 MiB
  static constexpr std::size_t kClasses = kMaxClassBits - kMinClassBits + 1;

  /// Index of the class whose capacity (2^(kMinClassBits + index)) covers
  /// `size`, or kClasses when the request is beyond the largest class.
  static std::size_t class_for(std::size_t size);

  std::vector<std::uint8_t> acquire_class(std::size_t cls, std::size_t size,
                                          bool reserve_only)
      EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  std::array<std::vector<std::vector<std::uint8_t>>, kClasses> free_
      GUARDED_BY(mutex_);
  std::size_t max_per_class_;
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace bitio::cz
