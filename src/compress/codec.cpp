#include "compress/codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "compress/bwt.hpp"
#include "compress/frame.hpp"
#include "compress/huffman.hpp"
#include "compress/lz.hpp"
#include "compress/shuffle.hpp"
#include "util/error.hpp"

namespace bitio::cz {

namespace {

// ---------------------------------------------------------------- none ----

class NoneCodec final : public Codec {
public:
  std::string name() const override { return "none"; }

  Bytes compress(ByteSpan input) const override {
    Bytes out;
    out.reserve(input.size() + 12);
    compress_append(input, out);
    return out;
  }

  void compress_append(ByteSpan input, Bytes& out) const override {
    out.insert(out.end(), {'R', 'A', 'W', '1'});
    put_u64(out, input.size());
    out.insert(out.end(), input.begin(), input.end());
  }

  Bytes decompress(ByteSpan frame) const override {
    Cursor cur(frame);
    check_magic(cur, "RAW1");
    const std::uint64_t size = cur.u64();
    if (cur.remaining() != size) throw FormatError("none: size mismatch");
    ByteSpan body = cur.rest();
    return Bytes(body.begin(), body.end());
  }

  double compress_speed_bps() const override { return 1e18; }
  double decompress_speed_bps() const override { return 1e18; }
};

// --------------------------------------------------------------- blosc ----

class BloscLikeCodec final : public Codec {
public:
  explicit BloscLikeCodec(std::size_t typesize)
      : typesize_(typesize == 0 ? 1 : typesize) {
    if (typesize > 255) throw UsageError("blosc: typesize too large");
  }

  std::string name() const override { return "blosc"; }

  Bytes compress(ByteSpan input) const override {
    Bytes out;
    // Full worst-case bound (raw fallback caps every chunk at raw size plus
    // headers, and the LZ stage transiently needs its own bound): one
    // allocation, no mid-frame reallocation/copy.
    out.reserve(input.size() + input.size() / 255 + 13 * (input.size() / kChunk + 1) + 32);
    compress_append(input, out);
    return out;
  }

  void compress_append(ByteSpan input, Bytes& out) const override {
    // Thread-local shuffle scratch: one chunk's worth, reused forever.
    thread_local Bytes shuffled;

    out.insert(out.end(), {'B', 'L', 'L', '1'});
    out.push_back(std::uint8_t(typesize_));
    put_u64(out, input.size());
    const std::uint32_t nchunks =
        std::uint32_t((input.size() + kChunk - 1) / kChunk);
    put_u32(out, nchunks);
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      const std::size_t off = std::size_t(c) * kChunk;
      const std::size_t len = std::min(kChunk, input.size() - off);
      ByteSpan chunk = input.subspan(off, len);
      if (shuffled.size() < len) shuffled.resize(len);
      shuffle_into(chunk, typesize_, shuffled.data());
      // Optimistically write the compressed-chunk header and LZ straight
      // into the frame; if the chunk turns out incompressible, roll back
      // to the mode byte and store it raw.  Saves the temporary packed
      // buffer (and its copy) the seed pipeline made per chunk.
      put_u32(out, std::uint32_t(len));
      out.push_back(1);  // chunk mode: shuffle+lz (tentative)
      const std::size_t enc_pos = out.size();
      put_u32(out, 0);   // enc_len placeholder
      const std::size_t body_pos = out.size();
      lz_compress_block_append(ByteSpan(shuffled.data(), len), out);
      const std::size_t packed = out.size() - body_pos;
      if (packed < len) {
        patch_u32(out, enc_pos, std::uint32_t(packed));
      } else {
        out.resize(enc_pos - 1);
        out.push_back(0);  // chunk mode: raw
        put_u32(out, std::uint32_t(len));
        out.insert(out.end(), chunk.begin(), chunk.end());
      }
    }
  }

  Bytes decompress(ByteSpan frame) const override {
    thread_local Bytes shuffled;

    Cursor cur(frame);
    check_magic(cur, "BLL1");
    const std::size_t typesize = cur.u8();
    const std::uint64_t orig_size = cur.u64();
    const std::uint32_t nchunks = cur.u32();
    Bytes out;
    out.reserve(orig_size);
    for (std::uint32_t c = 0; c < nchunks; ++c) {
      const std::uint32_t raw_len = cur.u32();
      const std::uint8_t mode = cur.u8();
      const std::uint32_t enc_len = cur.u32();
      ByteSpan body = cur.bytes(enc_len);
      if (mode == 0) {
        if (enc_len != raw_len) throw FormatError("blosc: bad raw chunk");
        out.insert(out.end(), body.begin(), body.end());
      } else if (mode == 1) {
        if (shuffled.size() < raw_len) shuffled.resize(raw_len);
        lz_decompress_block_into(body, shuffled.data(), raw_len);
        // Unshuffle straight into the output (reserve above keeps the
        // resize from reallocating mid-frame).
        const std::size_t at = out.size();
        if (at + raw_len > orig_size) throw FormatError("blosc: size mismatch");
        out.resize(at + raw_len);
        unshuffle_into(ByteSpan(shuffled.data(), raw_len), typesize,
                       out.data() + at);
      } else {
        throw FormatError("blosc: unknown chunk mode");
      }
    }
    if (out.size() != orig_size) throw FormatError("blosc: size mismatch");
    return out;
  }

  // Blosc's design point: near-memcpy speed.
  double compress_speed_bps() const override { return 1.5e9; }
  double decompress_speed_bps() const override { return 2.5e9; }

private:
  static constexpr std::size_t kChunk = 256 * 1024;
  std::size_t typesize_;
};

// --------------------------------------------------------------- bzip2 ----

/// Zero-run-length encode an MTF byte stream into the 257-symbol alphabet:
/// RUNA(0)/RUNB(1) encode runs of zeros in bijective base 2; byte b>0 maps
/// to symbol b+1.  This is the real bzip2 scheme.
std::vector<std::uint16_t> zrle_encode(ByteSpan mtf) {
  std::vector<std::uint16_t> symbols;
  symbols.reserve(mtf.size() / 2 + 8);
  std::size_t i = 0;
  while (i < mtf.size()) {
    if (mtf[i] == 0) {
      std::uint64_t run = 0;
      while (i < mtf.size() && mtf[i] == 0) {
        ++run;
        ++i;
      }
      while (run > 0) {
        if (run & 1) {
          symbols.push_back(0);  // RUNA: adds 1 << k
          run = (run - 1) >> 1;
        } else {
          symbols.push_back(1);  // RUNB: adds 2 << k
          run = (run - 2) >> 1;
        }
      }
    } else {
      symbols.push_back(std::uint16_t(mtf[i]) + 1);
      ++i;
    }
  }
  return symbols;
}

Bytes zrle_decode(std::span<const std::uint16_t> symbols) {
  Bytes out;
  out.reserve(symbols.size() * 2);
  std::size_t i = 0;
  while (i < symbols.size()) {
    if (symbols[i] <= 1) {
      std::uint64_t run = 0;
      int k = 0;
      while (i < symbols.size() && symbols[i] <= 1) {
        run += std::uint64_t(symbols[i] + 1) << k;
        ++k;
        ++i;
      }
      out.insert(out.end(), run, 0);
    } else {
      out.push_back(std::uint8_t(symbols[i] - 1));
      ++i;
    }
  }
  return out;
}

class Bzip2LikeCodec final : public Codec {
public:
  std::string name() const override { return "bzip2"; }

  Bytes compress(ByteSpan input) const override {
    Bytes out;
    compress_append(input, out);
    return out;
  }

  void compress_append(ByteSpan input, Bytes& out) const override {
    out.insert(out.end(), {'B', 'Z', 'L', '1'});
    put_u64(out, input.size());
    out.push_back(1);  // mode: compressed (tentative, rolled back if larger)
    const std::size_t body_pos = out.size();
    const std::uint32_t nblocks =
        std::uint32_t((input.size() + kBlock - 1) / kBlock);
    put_u32(out, nblocks);
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      const std::size_t off = std::size_t(b) * kBlock;
      const std::size_t len = std::min(kBlock, input.size() - off);
      ByteSpan block = input.subspan(off, len);
      BwtResult bwt = bwt_forward(block);
      Bytes mtf = mtf_encode(bwt.last_column);
      std::vector<std::uint16_t> symbols = zrle_encode(mtf);
      Bytes enc = huffman_encode(symbols, kAlphabet);
      put_u32(out, std::uint32_t(len));
      put_u32(out, bwt.primary_index);
      put_u32(out, std::uint32_t(enc.size()));
      out.insert(out.end(), enc.begin(), enc.end());
    }
    if (out.size() - body_pos >= input.size()) {
      out.resize(body_pos - 1);
      out.push_back(0);  // mode: raw
      out.insert(out.end(), input.begin(), input.end());
    }
  }

  Bytes decompress(ByteSpan frame) const override {
    Cursor cur(frame);
    check_magic(cur, "BZL1");
    const std::uint64_t orig_size = cur.u64();
    const std::uint8_t mode = cur.u8();
    if (mode == 0) {
      if (cur.remaining() != orig_size)
        throw FormatError("bzip2: raw size mismatch");
      ByteSpan body = cur.rest();
      return Bytes(body.begin(), body.end());
    }
    const std::uint32_t nblocks = cur.u32();
    Bytes out;
    out.reserve(orig_size);
    for (std::uint32_t b = 0; b < nblocks; ++b) {
      const std::uint32_t raw_len = cur.u32();
      const std::uint32_t primary = cur.u32();
      const std::uint32_t enc_len = cur.u32();
      ByteSpan enc = cur.bytes(enc_len);
      std::vector<std::uint16_t> symbols = huffman_decode(enc);
      Bytes mtf = zrle_decode(symbols);
      if (mtf.size() != raw_len) throw FormatError("bzip2: block length");
      Bytes last = mtf_decode(mtf);
      Bytes plain = bwt_inverse(last, primary);
      out.insert(out.end(), plain.begin(), plain.end());
    }
    if (out.size() != orig_size) throw FormatError("bzip2: size mismatch");
    return out;
  }

  // bzip2's design point: an order of magnitude slower than Blosc.
  double compress_speed_bps() const override { return 1.5e7; }
  double decompress_speed_bps() const override { return 4.0e7; }

private:
  static constexpr std::size_t kBlock = 128 * 1024;
  static constexpr std::size_t kAlphabet = 257;
};

}  // namespace

std::unique_ptr<Codec> make_none_codec() {
  return std::make_unique<NoneCodec>();
}

std::unique_ptr<Codec> make_blosc_codec(std::size_t typesize) {
  return std::make_unique<BloscLikeCodec>(typesize);
}

std::unique_ptr<Codec> make_bzip2_codec() {
  return std::make_unique<Bzip2LikeCodec>();
}

std::unique_ptr<Codec> make_codec(const std::string& name,
                                  std::size_t typesize) {
  if (name == "none" || name.empty()) return make_none_codec();
  if (name == "blosc") return make_blosc_codec(typesize);
  if (name == "bzip2") return make_bzip2_codec();
  throw UsageError("unknown codec '" + name + "'");
}

}  // namespace bitio::cz
