#include "compress/buffer_pool.hpp"

namespace bitio::cz {

BufferPool::BufferPool(std::size_t max_per_class)
    : max_per_class_(max_per_class) {}

std::size_t BufferPool::class_for(std::size_t size) {
  std::size_t bits = kMinClassBits;
  while (bits <= kMaxClassBits && (std::size_t(1) << bits) < size) ++bits;
  return bits - kMinClassBits;  // == kClasses when size > 2^kMaxClassBits
}

std::vector<std::uint8_t> BufferPool::acquire_class(std::size_t cls,
                                                    std::size_t size,
                                                    bool reserve_only) {
  std::vector<std::uint8_t> buf;
  if (cls >= kClasses) {
    // Oversized request: serve unpooled, count as a miss so the hit rate
    // reflects real allocator traffic.
    util::MutexLock lock(mutex_);
    ++stats_.misses;
  } else {
    bool hit = false;
    {
      util::MutexLock lock(mutex_);
      auto& freelist = free_[cls];
      if (!freelist.empty()) {
        buf = std::move(freelist.back());
        freelist.pop_back();
        hit = true;
        ++stats_.hits;
      } else {
        ++stats_.misses;
      }
    }
    if (!hit) buf.reserve(std::size_t(1) << (kMinClassBits + cls));
  }
  if (reserve_only) {
    buf.clear();
    if (buf.capacity() < size) buf.reserve(size);
  } else {
    // resize() value-initialises any bytes beyond the old size; recycled
    // buffers keep their stale contents (documented — callers overwrite).
    buf.resize(size);
  }
  return buf;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t size) {
  return acquire_class(class_for(size), size, /*reserve_only=*/false);
}

std::vector<std::uint8_t> BufferPool::acquire_reserve(std::size_t capacity) {
  return acquire_class(class_for(capacity), capacity, /*reserve_only=*/true);
}

void BufferPool::release(std::vector<std::uint8_t>&& buffer) {
  const std::size_t cap = buffer.capacity();
  if (cap == 0) return;  // moved-from / placeholder, nothing to recycle
  // File the buffer under the largest class its capacity fully covers, so
  // a later acquire of that class size is guaranteed not to reallocate.
  std::size_t cls = class_for(cap);
  if (cls < kClasses && (std::size_t(1) << (kMinClassBits + cls)) > cap) {
    if (cls == 0) return;  // smaller than the smallest class: drop it
    --cls;
  }
  util::MutexLock lock(mutex_);
  ++stats_.released;
  if (cls >= kClasses) return;  // oversized buffers are never retained
  auto& freelist = free_[cls];
  if (freelist.size() >= max_per_class_) return;  // bounded depth: free it
  buffer.clear();
  freelist.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

void BufferPool::reset_stats() {
  util::MutexLock lock(mutex_);
  stats_ = Stats{};
}

void BufferPool::trim() {
  util::MutexLock lock(mutex_);
  for (auto& freelist : free_) freelist.clear();
}

BufferPool& BufferPool::shared() {
  // Leaked like ThreadPool::shared(): codec pipelines may run during
  // static destruction and must still find a live pool.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

}  // namespace bitio::cz
