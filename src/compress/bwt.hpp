#pragma once
// Burrows-Wheeler transform and move-to-front stages of the bzip2-like
// codec.
//
// The forward BWT sorts all cyclic rotations of the block (Manber-Myers
// rank doubling, O(n log^2 n)) and outputs the last column plus the row
// index of the original string; the inverse reconstructs via the standard
// LF-mapping.  Blocks are limited by the caller (Bzip2Like uses 128 KiB) to
// keep the sort cheap.

#include "compress/codec.hpp"

namespace bitio::cz {

struct BwtResult {
  Bytes last_column;
  std::uint32_t primary_index = 0;  // row of the original string
};

/// Forward transform of one block (block.size() <= 2^31).
BwtResult bwt_forward(ByteSpan block);

/// Inverse transform.
Bytes bwt_inverse(ByteSpan last_column, std::uint32_t primary_index);

/// Move-to-front encode/decode (byte alphabet).
Bytes mtf_encode(ByteSpan input);
Bytes mtf_decode(ByteSpan input);

}  // namespace bitio::cz
