#include "compress/bwt.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace bitio::cz {

BwtResult bwt_forward(ByteSpan block) {
  const std::size_t n = block.size();
  BwtResult result;
  if (n == 0) return result;

  // rank[i] = sort key of rotation starting at i, refined by doubling.
  std::vector<std::int32_t> rank(n), tmp(n);
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) rank[i] = block[i];
  std::iota(order.begin(), order.end(), 0u);

  for (std::size_t k = 1;; k *= 2) {
    // Cyclic comparison: pair (rank[i], rank[(i+k) mod n]).
    auto key = [&](std::uint32_t i) {
      return std::pair<std::int32_t, std::int32_t>(
          rank[i], rank[(i + k) % n]);
    };
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
    tmp[order[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      tmp[order[i]] =
          tmp[order[i - 1]] + (key(order[i - 1]) < key(order[i]) ? 1 : 0);
    }
    rank.swap(tmp);
    if (std::size_t(rank[order[n - 1]]) == n - 1) break;  // all distinct
    if (k >= n) {
      // Fully periodic input (e.g. all bytes equal): ranks can never become
      // distinct; the current order is a valid stable sort of rotations.
      break;
    }
  }

  result.last_column.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t start = order[i];
    result.last_column[i] = block[(start + n - 1) % n];
    if (start == 0) result.primary_index = std::uint32_t(i);
  }
  return result;
}

Bytes bwt_inverse(ByteSpan last_column, std::uint32_t primary_index) {
  const std::size_t n = last_column.size();
  if (n == 0) return {};
  if (primary_index >= n) throw FormatError("bwt: bad primary index");

  // LF mapping: next[i] gives, for row i of the sorted matrix, the row whose
  // rotation is one step earlier in the text.
  std::array<std::uint32_t, 256> counts{};
  for (auto b : last_column) ++counts[b];
  std::array<std::uint32_t, 256> starts{};
  std::uint32_t sum = 0;
  for (int c = 0; c < 256; ++c) {
    starts[std::size_t(c)] = sum;
    sum += counts[std::size_t(c)];
  }
  std::vector<std::uint32_t> next(n);
  {
    std::array<std::uint32_t, 256> seen{};
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t c = last_column[i];
      next[starts[c] + seen[c]] = std::uint32_t(i);
      ++seen[c];
    }
  }

  Bytes out(n);
  std::uint32_t row = next[primary_index];
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = last_column[row];
    row = next[row];
  }
  return out;
}

Bytes mtf_encode(ByteSpan input) {
  std::array<std::uint8_t, 256> table;
  for (int i = 0; i < 256; ++i) table[std::size_t(i)] = std::uint8_t(i);
  Bytes out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t byte = input[i];
    std::uint8_t pos = 0;
    while (table[pos] != byte) ++pos;
    out[i] = pos;
    // Move to front.
    for (std::uint8_t j = pos; j > 0; --j) table[j] = table[j - 1];
    table[0] = byte;
  }
  return out;
}

Bytes mtf_decode(ByteSpan input) {
  std::array<std::uint8_t, 256> table;
  for (int i = 0; i < 256; ++i) table[std::size_t(i)] = std::uint8_t(i);
  Bytes out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t pos = input[i];
    const std::uint8_t byte = table[pos];
    out[i] = byte;
    for (std::uint8_t j = pos; j > 0; --j) table[j] = table[j - 1];
    table[0] = byte;
  }
  return out;
}

}  // namespace bitio::cz
