#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/error.hpp"

namespace bitio::cz {

void BitWriter::put(std::uint32_t bits, int count) {
  acc_ = (acc_ << count) | (bits & ((1ull << count) - 1));
  nbits_ += count;
  while (nbits_ >= 8) {
    nbits_ -= 8;
    out_.push_back(static_cast<std::uint8_t>(acc_ >> nbits_));
  }
}

Bytes BitWriter::finish() {
  if (nbits_ > 0) {
    out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - nbits_)));
    nbits_ = 0;
  }
  return std::move(out_);
}

std::uint32_t BitReader::get(int count) {
  std::uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    if (byte_pos_ >= data_.size())
      throw FormatError("huffman: bit stream truncated");
    const int bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
    value = (value << 1) | std::uint32_t(bit);
    if (++bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }
  return value;
}

namespace {

/// Compute code lengths from frequencies via a heap-built Huffman tree,
/// flattening frequencies until the depth cap holds.
std::vector<int> code_lengths(std::vector<std::uint64_t> freq) {
  const std::size_t n = freq.size();
  std::vector<int> lengths(n, 0);

  // Count used symbols; degenerate alphabets get fixed short codes.
  std::size_t used = 0;
  for (auto f : freq)
    if (f) ++used;
  if (used == 0) return lengths;
  if (used == 1) {
    for (std::size_t i = 0; i < n; ++i)
      if (freq[i]) lengths[i] = 1;
    return lengths;
  }

  while (true) {
    // Node arena: leaves [0,n), internal nodes appended.
    struct Node {
      std::uint64_t weight;
      int left = -1, right = -1;
    };
    std::vector<Node> nodes;
    nodes.reserve(2 * n);
    using Item = std::pair<std::uint64_t, int>;  // (weight, node index)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back({freq[i], -1, -1});
      if (freq[i]) heap.emplace(freq[i], int(i));
    }
    while (heap.size() > 1) {
      auto [wa, a] = heap.top();
      heap.pop();
      auto [wb, b] = heap.top();
      heap.pop();
      nodes.push_back({wa + wb, a, b});
      heap.emplace(wa + wb, int(nodes.size() - 1));
    }
    // Depth-first assignment of depths.
    std::fill(lengths.begin(), lengths.end(), 0);
    int max_len = 0;
    std::vector<std::pair<int, int>> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      const Node& node = nodes[std::size_t(idx)];
      if (node.left < 0) {
        lengths[std::size_t(idx)] = std::max(depth, 1);
        max_len = std::max(max_len, lengths[std::size_t(idx)]);
      } else {
        stack.emplace_back(node.left, depth + 1);
        stack.emplace_back(node.right, depth + 1);
      }
    }
    if (max_len <= kMaxCodeLen) return lengths;
    // Flatten the distribution and retry (bzip2's trick).
    for (auto& f : freq)
      if (f) f = f / 2 + 1;
  }
}

/// Canonical codes from lengths: symbols sorted by (length, index).
std::vector<std::uint32_t> canonical_codes(const std::vector<int>& lengths) {
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  std::vector<std::size_t> order(lengths.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lengths[a] < lengths[b];
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (std::size_t idx : order) {
    if (lengths[idx] == 0) continue;
    code <<= (lengths[idx] - prev_len);
    codes[idx] = code;
    ++code;
    prev_len = lengths[idx];
  }
  return codes;
}

}  // namespace

Bytes huffman_encode(std::span<const std::uint16_t> symbols,
                     std::size_t alphabet_size) {
  if (alphabet_size == 0 || alphabet_size > 65536)
    throw UsageError("huffman: bad alphabet size");
  std::vector<std::uint64_t> freq(alphabet_size, 0);
  for (auto s : symbols) {
    if (s >= alphabet_size) throw UsageError("huffman: symbol out of range");
    ++freq[s];
  }
  const auto lengths = code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  Bytes out;
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
  };
  put32(std::uint32_t(symbols.size()));
  out.push_back(std::uint8_t(alphabet_size & 0xFF));
  out.push_back(std::uint8_t((alphabet_size >> 8) & 0xFF));

  // Length table as 4-bit nibbles (kMaxCodeLen = 15 fits).
  for (std::size_t i = 0; i < alphabet_size; i += 2) {
    const int lo = lengths[i];
    const int hi = i + 1 < alphabet_size ? lengths[i + 1] : 0;
    out.push_back(std::uint8_t(lo | (hi << 4)));
  }

  BitWriter writer;
  for (auto s : symbols) writer.put(codes[s], lengths[s]);
  Bytes bits = writer.finish();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

std::vector<std::uint16_t> huffman_decode(ByteSpan data) {
  std::size_t pos = 0;
  auto need = [&](std::size_t k) {
    if (pos + k > data.size()) throw FormatError("huffman: truncated header");
  };
  need(6);
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) count |= std::uint32_t(data[pos++]) << (8 * i);
  std::size_t alphabet_size = data[pos] | (std::size_t(data[pos + 1]) << 8);
  pos += 2;
  if (alphabet_size == 0) alphabet_size = 65536;

  std::vector<int> lengths(alphabet_size, 0);
  need((alphabet_size + 1) / 2);
  for (std::size_t i = 0; i < alphabet_size; i += 2) {
    const std::uint8_t b = data[pos++];
    lengths[i] = b & 0x0F;
    if (i + 1 < alphabet_size) lengths[i + 1] = b >> 4;
  }
  const auto codes = canonical_codes(lengths);

  // Table-driven decode: one flat 2^kMaxCodeLen lookup table, indexed by
  // the next kMaxCodeLen bits of the stream.  A symbol with code C of
  // length L owns every index whose top L bits equal C; entries pack
  // (symbol << 4 | L), and 0 (L = 0) marks an index no code reaches.  This
  // replaces the seed decoder's bit-at-a-time canonical walk (one range
  // test per bit) with one load per symbol.  The table is thread-local so
  // block decodes on the drain path allocate nothing after warmup.
  constexpr std::size_t kTableSize = std::size_t(1) << kMaxCodeLen;
  thread_local std::vector<std::uint32_t> table;
  table.assign(kTableSize, 0);
  for (std::size_t s = 0; s < alphabet_size; ++s) {
    const int len = lengths[s];
    if (len == 0) continue;
    const std::size_t start = std::size_t(codes[s]) << (kMaxCodeLen - len);
    const std::size_t span = kTableSize >> len;
    if ((std::size_t(codes[s]) >> len) != 0 || start + span > kTableSize)
      throw FormatError("huffman: bad length table");
    const std::uint32_t packed = (std::uint32_t(s) << 4) | std::uint32_t(len);
    std::fill_n(table.begin() + long(start), span, packed);
  }

  // Byte-refilled accumulator: peek kMaxCodeLen bits (zero-padded past the
  // end), look up, consume the winning code's length.
  const std::uint8_t* p = data.data() + pos;
  const std::uint8_t* const pend = data.data() + data.size();
  std::uint64_t acc = 0;
  int nbits = 0;
  std::vector<std::uint16_t> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    while (nbits < kMaxCodeLen && p < pend) {
      acc = (acc << 8) | *p++;
      nbits += 8;
    }
    const std::uint32_t window =
        nbits >= kMaxCodeLen
            ? std::uint32_t(acc >> (nbits - kMaxCodeLen)) & (kTableSize - 1)
            : std::uint32_t(acc << (kMaxCodeLen - nbits)) & (kTableSize - 1);
    const std::uint32_t entry = table[window];
    const int len = int(entry & 0x0F);
    if (len == 0) throw FormatError("huffman: bad code");
    if (len > nbits) throw FormatError("huffman: bit stream truncated");
    nbits -= len;
    out.push_back(std::uint16_t(entry >> 4));
  }
  return out;
}

}  // namespace bitio::cz
