#include "compress/lz.hpp"

#include <cstring>

#include "util/error.hpp"

namespace bitio::cz {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;

inline std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void emit_length(Bytes& out, std::size_t extra) {
  // 255-terminated extension bytes, LZ4 style.
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(extra));
}

void emit_sequence(Bytes& out, const std::uint8_t* lit, std::size_t lit_len,
                   std::size_t offset, std::size_t match_len) {
  const bool has_match = match_len >= kMinMatch;
  const std::size_t mstored = has_match ? match_len - kMinMatch : 0;
  const std::uint8_t lit_nib =
      static_cast<std::uint8_t>(lit_len >= 15 ? 15 : lit_len);
  const std::uint8_t mat_nib =
      static_cast<std::uint8_t>(has_match ? (mstored >= 15 ? 15 : mstored) : 0);
  out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | mat_nib));
  if (lit_nib == 15) emit_length(out, lit_len - 15);
  out.insert(out.end(), lit, lit + lit_len);
  if (has_match) {
    out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    if (mat_nib == 15) emit_length(out, mstored - 15);
  }
}

}  // namespace

Bytes lz_compress_block(ByteSpan input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const std::uint8_t* const base = input.data();
  const std::size_t n = input.size();

  if (n < kMinMatch + 1) {
    // Too small to match anything: one literal-only sequence.
    emit_sequence(out, base, n, 0, 0);
    return out;
  }

  std::vector<std::uint32_t> table(1u << kHashBits, 0xFFFFFFFFu);
  std::size_t pos = 0;        // current scan position
  std::size_t anchor = 0;     // start of pending literals
  const std::size_t limit = n - kMinMatch;  // last position a match can start

  while (pos <= limit) {
    const std::uint32_t h = hash4(read32(base + pos));
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand != 0xFFFFFFFFu && pos - cand <= kMaxOffset &&
        read32(base + cand) == read32(base + pos)) {
      // Extend the match forward.
      std::size_t len = kMinMatch;
      while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
      emit_sequence(out, base + anchor, pos - anchor, pos - cand, len);
      pos += len;
      anchor = pos;
      // Seed the table inside the skipped region sparsely (speed/ratio
      // trade-off like LZ4's acceleration 1).
      if (pos <= limit) table[hash4(read32(base + pos - 2))] =
          static_cast<std::uint32_t>(pos - 2);
    } else {
      ++pos;
    }
  }
  // Final literals.
  emit_sequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

Bytes lz_decompress_block(ByteSpan block, std::size_t original_size) {
  Bytes out;
  out.reserve(original_size);
  std::size_t ip = 0;
  const std::size_t in_size = block.size();

  auto read_byte = [&]() -> std::uint8_t {
    if (ip >= in_size) throw FormatError("lz: truncated block");
    return block[ip++];
  };
  auto read_ext = [&](std::size_t start) {
    std::size_t len = start;
    if (start == 15) {
      std::uint8_t b;
      do {
        b = read_byte();
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip < in_size) {
    const std::uint8_t token = read_byte();
    const std::size_t lit_len = read_ext(token >> 4);
    if (ip + lit_len > in_size) throw FormatError("lz: literal overrun");
    out.insert(out.end(), block.begin() + long(ip),
               block.begin() + long(ip + lit_len));
    ip += lit_len;
    if (ip >= in_size) break;  // final literal-only sequence
    const std::size_t lo = read_byte();
    const std::size_t hi = read_byte();
    const std::size_t offset = lo | (hi << 8);
    const std::size_t match_len = read_ext(token & 0x0F) + kMinMatch;
    if (offset == 0 || offset > out.size())
      throw FormatError("lz: bad match offset");
    // Byte-by-byte copy: overlapping matches (offset < len) are the RLE case
    // and must replicate, so memcpy is not allowed here.
    std::size_t from = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
  if (out.size() != original_size)
    throw FormatError("lz: size mismatch after decode (got " +
                      std::to_string(out.size()) + ", want " +
                      std::to_string(original_size) + ")");
  return out;
}

}  // namespace bitio::cz
