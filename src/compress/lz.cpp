#include "compress/lz.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace bitio::cz {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 16;
constexpr int kMaxChainWalk = 2;   // candidates examined per position
constexpr int kSkipTrigger = 6;    // misses >> trigger = extra stride (LZ4)
constexpr std::size_t kGoodEnough = 8;  // stop the walk at this match length
constexpr std::size_t kLazyCutoff = 8;  // skip lazy probe for longer matches

inline std::uint32_t read32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t read64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// 5-byte hash for chain insertion/lookup: on smooth byte planes (shuffled
/// mantissa streams) 4-byte windows collide into a few huge chains; the
/// fifth byte spreads them so short walks still find long matches.  Misses
/// 4-byte-only matches, which the format tolerates (matches are verified
/// byte-for-byte; a missed match just costs ratio).
inline std::uint32_t hash5(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return std::uint32_t(((v << 24) * 889523592379ull) >> (64 - kHashBits));
}

/// Bucket for position `pos`: hash5 where 8 readable bytes remain, hash4 at
/// the block tail.  The rule depends only on (data, pos) so insert and
/// probe always agree on the bucket — and output stays deterministic.
inline std::uint32_t hash_at(const std::uint8_t* base, std::size_t n,
                             std::size_t pos) {
  return pos + 8 <= n ? hash5(base + pos) : hash4(read32(base + pos));
}

/// Length of the common prefix of a and b, at most `limit` bytes, compared
/// a word at a time (the first differing byte found with countr_zero —
/// little-endian word order matches byte order).
inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    const std::uint64_t diff = read64(a + len) ^ read64(b + len);
    if (diff != 0) return len + std::size_t(std::countr_zero(diff) >> 3);
    len += 8;
  }
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

// Raw-pointer emit into a pre-sized output region: the caller reserves the
// LZ4 worst-case bound up front, so sequences write without per-byte growth
// checks and literals use oversized 8-byte "wild" copies into the slack.
inline std::uint8_t* emit_length(std::uint8_t* op, std::size_t extra) {
  // 255-terminated extension bytes, LZ4 style.
  while (extra >= 255) {
    *op++ = 255;
    extra -= 255;
  }
  *op++ = static_cast<std::uint8_t>(extra);
  return op;
}

inline std::uint8_t* emit_sequence(std::uint8_t* op, const std::uint8_t* lit,
                                   std::size_t lit_len, std::size_t offset,
                                   std::size_t match_len) {
  const bool has_match = match_len >= kMinMatch;
  const std::size_t mstored = has_match ? match_len - kMinMatch : 0;
  const std::uint8_t lit_nib =
      static_cast<std::uint8_t>(lit_len >= 15 ? 15 : lit_len);
  const std::uint8_t mat_nib =
      static_cast<std::uint8_t>(has_match ? (mstored >= 15 ? 15 : mstored) : 0);
  *op++ = static_cast<std::uint8_t>((lit_nib << 4) | mat_nib);
  if (lit_nib == 15) op = emit_length(op, lit_len - 15);
  // Word-wise copy with an exact tail (no over-read of the input buffer).
  std::size_t i = 0;
  for (; i + 8 <= lit_len; i += 8) std::memcpy(op + i, lit + i, 8);
  if (i < lit_len) std::memcpy(op + i, lit + i, lit_len - i);
  op += lit_len;
  if (has_match) {
    *op++ = static_cast<std::uint8_t>(offset & 0xFF);
    *op++ = static_cast<std::uint8_t>(offset >> 8);
    if (mat_nib == 15) op = emit_length(op, mstored - 15);
  }
  return op;
}

/// Hash-chain tables, reused across calls (thread-local, so concurrent
/// drain lanes / codec pipeline workers never share or allocate).  The head
/// table IS cleared per block — a stale entry that happened to byte-verify
/// in the current block would add a match a fresh table cannot see, making
/// output depend on which thread compressed the previous block and breaking
/// the pipeline's identical-bytes-for-any-thread-count guarantee.  The
/// chain table needs no clearing: walks only reach positions inserted this
/// block (head starts empty, chains grow from insertions).
struct MatchScratch {
  std::vector<std::uint32_t> head;   // hash -> most recent position
  std::vector<std::uint32_t> chain;  // position -> previous same-hash position

  void prepare(std::size_t n) {
    head.assign(std::size_t(1) << kHashBits, 0xFFFFFFFFu);  // empty sentinel
    if (chain.size() < n) chain.resize(n);
  }
};

thread_local MatchScratch tl_scratch;

struct Match {
  std::size_t len = 0;
  std::size_t offset = 0;
};

/// Look up the best match for `pos` along its hash chain, then insert `pos`.
inline Match find_and_insert(MatchScratch& s, const std::uint8_t* base,
                             std::size_t n, std::size_t pos) {
  const std::uint32_t h = hash_at(base, n, pos);
  std::size_t cand = s.head[h];
  s.chain[pos] = std::uint32_t(cand);
  s.head[h] = std::uint32_t(pos);

  Match best;
  const std::size_t limit = n - pos;
  const std::size_t floor_pos = pos > kMaxOffset ? pos - kMaxOffset : 0;
  for (int walk = 0; walk < kMaxChainWalk; ++walk) {
    if (cand >= pos || cand < floor_pos) break;  // stale or out of window
    // Cheap rejects first: candidate must beat the current best, and its
    // first four bytes must match.
    if ((best.len == 0 || base[cand + best.len] == base[pos + best.len]) &&
        read32(base + cand) == read32(base + pos)) {
      const std::size_t len = match_length(base + cand, base + pos, limit);
      if (len >= kMinMatch && len > best.len) {
        best.len = len;
        best.offset = pos - cand;
        // A long-enough match ends the walk: deeper candidates rarely beat
        // it by more than the probes cost.
        if (len == limit || len >= kGoodEnough) break;
      }
    }
    const std::size_t next = s.chain[cand];
    if (next >= cand) break;  // stale entry: chains must strictly decrease
    cand = next;
  }
  return best;
}

}  // namespace

void lz_compress_block_append(ByteSpan input, Bytes& out) {
  const std::uint8_t* const base = input.data();
  const std::size_t n = input.size();

  // Grow `out` to the LZ4 worst-case bound once, emit through a raw
  // pointer, and trim to the bytes actually written at the end — the emit
  // path never touches vector growth machinery.
  const std::size_t out0 = out.size();
  out.resize(out0 + n + n / 255 + 16);
  std::uint8_t* const obase = out.data() + out0;
  std::uint8_t* op = obase;

  if (n < kMinMatch + 1) {
    // Too small to match anything: one literal-only sequence.
    op = emit_sequence(op, base, n, 0, 0);
    out.resize(out0 + std::size_t(op - obase));
    return;
  }

  MatchScratch& s = tl_scratch;
  s.prepare(n);

  std::size_t pos = 0;        // current scan position
  std::size_t anchor = 0;     // start of pending literals
  std::size_t misses = 0;     // consecutive failed probes (skip acceleration)
  const std::size_t limit = n - kMinMatch;  // last position a match can start

  while (pos <= limit) {
    Match m = find_and_insert(s, base, n, pos);
    if (m.len == 0) {
      // Accelerate through incompressible runs: stride grows with every
      // kSkipTrigger-th consecutive miss, exactly LZ4's scheme.  This is
      // what keeps shuffled float mantissa planes near memcpy speed.
      pos += 1 + (misses++ >> kSkipTrigger);
      continue;
    }
    misses = 0;
    // One-step lazy matching: if the next position starts a strictly longer
    // match, demote the current byte to a literal and take that one.  Only
    // short matches are worth the extra probe — a long match amortises its
    // token regardless.
    while (pos + 1 <= limit && m.len < kLazyCutoff) {
      Match next = find_and_insert(s, base, n, pos + 1);
      if (next.len <= m.len) break;
      ++pos;
      m = next;
    }
    op = emit_sequence(op, base + anchor, pos - anchor, m.offset, m.len);
    pos += m.len;
    anchor = pos;
    // Seed the table near the match end so adjacent repeats are found.
    if (pos >= 2 && pos <= limit) {
      const std::size_t p2 = pos - 2;
      const std::uint32_t h2 = hash_at(base, n, p2);
      s.chain[p2] = s.head[h2];
      s.head[h2] = std::uint32_t(p2);
    }
  }
  // Final literals.
  op = emit_sequence(op, base + anchor, n - anchor, 0, 0);
  out.resize(out0 + std::size_t(op - obase));
}

Bytes lz_compress_block(ByteSpan input) {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  lz_compress_block_append(input, out);
  return out;
}

void lz_decompress_block_into(ByteSpan block, std::uint8_t* out,
                              std::size_t original_size) {
  const std::uint8_t* ip = block.data();
  const std::uint8_t* const iend = ip + block.size();
  std::uint8_t* op = out;
  std::uint8_t* const oend = out + original_size;

  auto read_byte = [&]() -> std::uint8_t {
    if (ip >= iend) throw FormatError("lz: truncated block");
    return *ip++;
  };
  auto read_ext = [&](std::size_t start) {
    std::size_t len = start;
    if (start == 15) {
      std::uint8_t b;
      do {
        b = read_byte();
        len += b;
      } while (b == 255);
    }
    return len;
  };

  while (ip < iend) {
    const std::uint8_t token = read_byte();
    const std::size_t lit_len = read_ext(token >> 4);
    if (std::size_t(iend - ip) < lit_len)
      throw FormatError("lz: literal overrun");
    if (std::size_t(oend - op) < lit_len)
      throw FormatError("lz: output overrun");
    std::memcpy(op, ip, lit_len);
    ip += lit_len;
    op += lit_len;
    if (ip >= iend) break;  // final literal-only sequence
    const std::size_t lo = read_byte();
    const std::size_t hi = read_byte();
    const std::size_t offset = lo | (hi << 8);
    const std::size_t match_len = read_ext(token & 0x0F) + kMinMatch;
    if (offset == 0 || offset > std::size_t(op - out))
      throw FormatError("lz: bad match offset");
    if (std::size_t(oend - op) < match_len)
      throw FormatError("lz: output overrun");
    const std::uint8_t* from = op - offset;
    if (offset >= match_len) {
      std::memcpy(op, from, match_len);  // disjoint: plain copy
      op += match_len;
    } else {
      // Overlapping match (offset < len) is the RLE case and must
      // replicate byte by byte.
      for (std::size_t i = 0; i < match_len; ++i) *op++ = from[i];
    }
  }
  if (op != oend)
    throw FormatError("lz: size mismatch after decode (got " +
                      std::to_string(op - out) + ", want " +
                      std::to_string(original_size) + ")");
}

Bytes lz_decompress_block(ByteSpan block, std::size_t original_size) {
  Bytes out(original_size);
  lz_decompress_block_into(block, out.data(), original_size);
  return out;
}

}  // namespace bitio::cz
