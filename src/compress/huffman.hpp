#pragma once
// Canonical Huffman coding over a generic symbol alphabet (up to 2^16
// symbols), used as the entropy stage of the bzip2-like codec.
//
// The encoded stream stores only the code-length table (canonical codes are
// reconstructed from lengths), then the MSB-first bit stream.  Code lengths
// are capped at kMaxCodeLen by iterative frequency flattening, the classic
// bzip2 approach.  Decoding is table-driven: a flat 2^kMaxCodeLen lookup
// resolves one symbol per load (the seed bit-at-a-time canonical walk is
// preserved in compress/reference.hpp).

#include <cstdint>

#include "compress/codec.hpp"

namespace bitio::cz {

inline constexpr int kMaxCodeLen = 15;

/// Encode `symbols` (each < alphabet_size).  Output layout:
///   u32 symbol_count, u16 alphabet_size,
///   code lengths as 4-bit nibbles (alphabet_size of them, padded),
///   bit stream.
Bytes huffman_encode(std::span<const std::uint16_t> symbols,
                     std::size_t alphabet_size);

/// Decode a buffer produced by huffman_encode().
std::vector<std::uint16_t> huffman_decode(ByteSpan data);

/// MSB-first bit writer used by the Huffman stage (exposed for tests).
class BitWriter {
public:
  void put(std::uint32_t bits, int count);
  /// Flush the partial byte (zero-padded) and return the buffer.
  Bytes finish();

private:
  Bytes out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// MSB-first bit reader.
class BitReader {
public:
  explicit BitReader(ByteSpan data) : data_(data) {}
  /// Read `count` (<= 24) bits; throws FormatError past end of stream.
  std::uint32_t get(int count);

private:
  ByteSpan data_;
  std::size_t byte_pos_ = 0;
  int bit_pos_ = 0;  // within current byte, MSB first
};

}  // namespace bitio::cz
