#pragma once
// Reference (pre-optimisation) kernels, frozen as-is when the production
// kernels in shuffle.cpp / lz.cpp / huffman.cpp were rewritten for speed.
//
// Two jobs:
//   * differential tests — the optimised kernels must round-trip against
//     these (same formats, interchangeable streams), so a perf regression
//     hunt can always bisect "format bug" vs "speed bug";
//   * bench baseline — bench/micro_codecs and the `perf` smoke test measure
//     speedup relative to seed_blosc_compress(), the seed single-thread
//     pipeline the ISSUE's ">= 3x at 4 threads" acceptance criterion names.
//
// Nothing here is reachable from the production write path; do not optimise
// these, that is the point.

#include "compress/codec.hpp"

namespace bitio::cz {

/// Seed strided one-byte-at-a-time shuffle/unshuffle.
Bytes seed_shuffle(ByteSpan input, std::size_t typesize);
Bytes seed_unshuffle(ByteSpan input, std::size_t typesize);

/// Seed greedy LZ (single-probe hash table, no lazy matching, no skip
/// acceleration, per-call table allocation).  Same block format as
/// lz_compress_block — streams are mutually decodable.
Bytes seed_lz_compress_block(ByteSpan input);
Bytes seed_lz_decompress_block(ByteSpan block, std::size_t original_size);

/// Seed canonical-Huffman decode (bit-at-a-time code walk).  Same stream
/// format as huffman_decode.
std::vector<std::uint16_t> seed_huffman_decode(ByteSpan data);

/// Seed blosc pipeline: seed_shuffle + seed_lz per 256 KiB chunk, emitting
/// a standard BLL1 frame (decodable by every blosc decoder in the tree).
Bytes seed_blosc_compress(ByteSpan input, std::size_t typesize);

}  // namespace bitio::cz
