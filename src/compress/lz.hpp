#pragma once
// Fast byte-oriented LZ77 codec in the LZ4 family, written from scratch.
//
// Block format (little-endian):
//   sequence := token [lit_ext]* literals (offset:u16 [match_ext]*)?
//   token    := (lit_len:4 | match_len:4); 15 in a nibble means "extended by
//               following 255-terminated bytes" (LZ4 convention).
//   match length is stored minus kMinMatch (4).  The final sequence of a
//   block carries literals only (no offset), again like LZ4.
//
// Greedy parse with a 64Ki-entry hash table over 4-byte windows; offsets are
// limited to 65535.  This is deliberately the same speed/ratio design point
// as the real LZ4 so the Blosc-like codec built on top inherits realistic
// behaviour on shuffled float data.

#include "compress/codec.hpp"

namespace bitio::cz {

/// Compress one block.  Output is *not* self-framing (no size header);
/// callers (BloscLike frame) must record the original size.
Bytes lz_compress_block(ByteSpan input);

/// Decompress one block produced by lz_compress_block().  `original_size`
/// must match the encoder's input size.  Throws FormatError on corruption.
Bytes lz_decompress_block(ByteSpan block, std::size_t original_size);

}  // namespace bitio::cz
