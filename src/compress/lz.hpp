#pragma once
// Fast byte-oriented LZ77 codec in the LZ4 family, written from scratch.
//
// Block format (little-endian):
//   sequence := token [lit_ext]* literals (offset:u16 [match_ext]*)?
//   token    := (lit_len:4 | match_len:4); 15 in a nibble means "extended by
//               following 255-terminated bytes" (LZ4 convention).
//   match length is stored minus kMinMatch (4).  The final sequence of a
//   block carries literals only (no offset), again like LZ4.
//
// Encoder: hash-chain match finder (multi-candidate, bounded walk) with
// one-step lazy matching and LZ4-style skip acceleration through literal
// runs, over thread-local scratch tables so repeated calls allocate
// nothing.  The seed single-probe greedy encoder is preserved in
// compress/reference.hpp; both emit the same format and their streams are
// mutually decodable.

#include "compress/codec.hpp"

namespace bitio::cz {

/// Compress one block.  Output is *not* self-framing (no size header);
/// callers (BloscLike frame) must record the original size.
Bytes lz_compress_block(ByteSpan input);

/// Append-variant: compress `input` onto the end of `out` (no temporary
/// buffer).  The caller notes out.size() before/after to learn the packed
/// length.  `input` must not alias `out`.
void lz_compress_block_append(ByteSpan input, Bytes& out);

/// Decompress one block produced by lz_compress_block().  `original_size`
/// must match the encoder's input size.  Throws FormatError on corruption.
Bytes lz_decompress_block(ByteSpan block, std::size_t original_size);

/// Allocation-free variant: decode into `out`, which must hold exactly
/// `original_size` bytes and not alias `block`.
void lz_decompress_block_into(ByteSpan block, std::uint8_t* out,
                              std::size_t original_size);

}  // namespace bitio::cz
