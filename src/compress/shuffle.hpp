#pragma once
// Blosc's shuffle filter: transpose an array of fixed-width elements so all
// first bytes come first, then all second bytes, etc.  Floating-point data
// from PIC particle arrays compresses far better after shuffling because
// exponent bytes of neighbouring particles are highly correlated.
//
// The kernels are single-pass and cache-blocked: common element widths
// (2/4/8/16) read the input once and feed `typesize` sequential plane
// streams, other widths transpose in L1-sized element tiles.  The seed
// strided one-byte-at-a-time loops live on in compress/reference.hpp for
// differential tests and bench baselines.

#include "compress/codec.hpp"

namespace bitio::cz {

/// Byte-transpose `input` with element width `typesize`.  The tail
/// (input.size() % typesize bytes) is copied through unchanged, matching
/// Blosc's handling of partial elements.
Bytes shuffle(ByteSpan input, std::size_t typesize);

/// Inverse of shuffle().
Bytes unshuffle(ByteSpan input, std::size_t typesize);

/// Allocation-free variants: write the (un)shuffled bytes into `out`, which
/// must hold input.size() bytes and not alias `input`.  These are the hot
/// kernels the codec pipeline calls with pooled scratch buffers.
void shuffle_into(ByteSpan input, std::size_t typesize, std::uint8_t* out);
void unshuffle_into(ByteSpan input, std::size_t typesize, std::uint8_t* out);

}  // namespace bitio::cz
