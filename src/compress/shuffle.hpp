#pragma once
// Blosc's shuffle filter: transpose an array of fixed-width elements so all
// first bytes come first, then all second bytes, etc.  Floating-point data
// from PIC particle arrays compresses far better after shuffling because
// exponent bytes of neighbouring particles are highly correlated.

#include "compress/codec.hpp"

namespace bitio::cz {

/// Byte-transpose `input` with element width `typesize`.  The tail
/// (input.size() % typesize bytes) is copied through unchanged, matching
/// Blosc's handling of partial elements.
Bytes shuffle(ByteSpan input, std::size_t typesize);

/// Inverse of shuffle().
Bytes unshuffle(ByteSpan input, std::size_t typesize);

}  // namespace bitio::cz
