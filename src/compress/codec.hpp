#pragma once
// Codec interface and registry.
//
// The paper enables Blosc and bzip2 inside ADIOS2 to shrink BIT1's particle
// and field data (Table II, Fig 7, Fig 8).  Both compressor families are
// reimplemented here from scratch:
//   * BloscLike  — shuffle filter + fast byte-oriented LZ (LZ4 class):
//                  high speed, moderate ratio, good on shuffled floats.
//   * Bzip2Like  — BWT + MTF + zero-run-length + canonical Huffman:
//                  slower, higher ratio.
// Every codec is self-framing: compress() output carries a header with the
// codec id and original size, so decompress() needs no side channel — the
// same property ADIOS2 relies on when recording "operators" in BP metadata.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace bitio::cz {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Abstract compressor.  Implementations must be stateless/thread-safe.
class Codec {
public:
  virtual ~Codec() = default;

  /// Registry name ("blosc", "bzip2", "none").
  virtual std::string name() const = 0;

  /// Compress `input` into a self-framing buffer.  Never fails; if the data
  /// is incompressible the frame stores it raw (plus a small header).
  virtual Bytes compress(ByteSpan input) const = 0;

  /// Append the frame compress() would produce onto `out` (byte-identical),
  /// without the temporary buffer — the zero-copy path bp::Writer uses to
  /// compress straight into pooled aggregation buffers.  `input` must not
  /// alias `out`.
  virtual void compress_append(ByteSpan input, Bytes& out) const {
    Bytes frame = compress(input);
    out.insert(out.end(), frame.begin(), frame.end());
  }

  /// Inverse of compress().  Throws FormatError on a corrupt frame.
  virtual Bytes decompress(ByteSpan frame) const = 0;

  /// Modelled single-core throughputs used by the storage simulator to
  /// charge CPU time for (de)compression (bytes of *input* per second).
  virtual double compress_speed_bps() const = 0;
  virtual double decompress_speed_bps() const = 0;
};

/// "none": identity codec (raw frame, zero CPU cost in the model).
std::unique_ptr<Codec> make_none_codec();

/// Blosc-like: shuffle(typesize) + LZ, chunked.  `typesize` is the element
/// width of the data being shuffled (4 for float records in BIT1).
std::unique_ptr<Codec> make_blosc_codec(std::size_t typesize = 4);

/// bzip2-like: BWT + MTF + ZRLE + Huffman, 128 KiB blocks.
std::unique_ptr<Codec> make_bzip2_codec();

/// Look up by name: "none" | "blosc" | "bzip2".  Throws UsageError on an
/// unknown name.
std::unique_ptr<Codec> make_codec(const std::string& name,
                                  std::size_t typesize = 4);

}  // namespace bitio::cz
