#include "resil/checkpoint_manager.hpp"

#include <algorithm>

#include "bp/reader.hpp"
#include "util/error.hpp"

namespace bitio::resil {

using core::RankCheckpoint;

namespace {

/// Checkpoint engine config: shared-file aggregation, no profiling (the
/// epochs are many short-lived containers; profiling stays on the
/// diagnostics series).
std::string ckpt_toml(const core::Bit1IoConfig& config) {
  core::Bit1IoConfig c = config;
  c.num_aggregators = config.checkpoint_aggregators;
  c.profiling = false;
  return c.adios2_toml();
}

/// Parse the epoch number out of ".../epoch_<k>/MANIFEST"; nullopt for
/// paths that are not committed-epoch manifests.
std::optional<std::uint64_t> manifest_epoch(const std::string& path) {
  const std::string tail = "/MANIFEST";
  if (path.size() <= tail.size() ||
      path.compare(path.size() - tail.size(), tail.size(), tail) != 0)
    return std::nullopt;
  const std::string dir = fsim::base_name(path.substr(0, path.size() - tail.size()));
  const std::string prefix = "epoch_";
  if (dir.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = prefix.size(); i < dir.size(); ++i) {
    if (dir[i] < '0' || dir[i] > '9') return std::nullopt;
    epoch = epoch * 10 + std::uint64_t(dir[i] - '0');
  }
  return epoch;
}

}  // namespace

CheckpointManager::CheckpointManager(fsim::SharedFs& fs, std::string run_dir,
                                     core::Bit1IoConfig config, int nranks)
    : fs_(fs),
      run_dir_(std::move(run_dir)),
      config_(std::move(config)),
      nranks_(nranks) {
  if (nranks_ <= 0)
    throw UsageError("CheckpointManager: nranks must be positive");
  config_.validate();
  fsim::FsClient root(fs_, 0);
  root.mkdir(resil_dir());
  staged_.resize(std::size_t(nranks_));
  // Resume epoch numbering after whatever a previous incarnation committed.
  const auto epochs = committed_epochs();
  if (!epochs.empty()) next_epoch_ = epochs.back() + 1;
}

std::string CheckpointManager::epoch_dir(std::uint64_t epoch) const {
  return resil_dir() + "/epoch_" + std::to_string(epoch);
}

std::string CheckpointManager::series_path(std::uint64_t epoch) const {
  return epoch_dir(epoch) + "/dmp_file." + config_.engine;
}

std::string CheckpointManager::manifest_path(std::uint64_t epoch) const {
  return epoch_dir(epoch) + "/MANIFEST";
}

void CheckpointManager::stage(int rank, const picmc::Simulation& sim) {
  if (rank < 0 || rank >= nranks_)
    throw UsageError("CheckpointManager: rank out of range");
  // First staging call fixes the species layout; later calls must agree.
  std::vector<std::string> names;
  for (std::size_t s = 0; s < sim.species_count(); ++s)
    names.push_back(sim.species(s).config.name);
  auto staged = core::capture_rank_state(sim);
  util::MutexLock lock(stage_mutex_);
  if (species_names_.empty())
    species_names_ = names;
  else if (names != species_names_)
    throw UsageError("CheckpointManager: inconsistent species layout");
  staged_[std::size_t(rank)] = std::move(staged);
}

std::uint64_t CheckpointManager::commit() {
  // Held across the whole commit: try_commit_epoch reads the staging table
  // and a straggler stage() must not rewrite a slot mid-epoch.
  util::MutexLock lock(stage_mutex_);
  bool any = false;
  std::uint64_t step = 0;
  for (const auto& staged : staged_) {
    any |= staged.present;
    step = std::max(step, staged.step);
  }
  if (!any) throw UsageError("CheckpointManager: no staged checkpoint");

  const std::uint64_t epoch = next_epoch_++;
  bool committed = false;
  for (int attempt = 0; attempt < kMaxCommitAttempts && !committed;
       ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff before the retry, charged to rank 0's
      // timeline so the cost shows up in the replay like a real sleep.
      stats_.write_retries += 1;
      fsim::FsClient(fs_, 0).charge_cpu(
          kBackoffBaseSeconds * double(1ull << (attempt - 1)), "backoff");
    }
    try {
      committed = try_commit_epoch(epoch, step);
    } catch (const IoError&) {
      // Transient injected failure (EIO/ENOSPC) mid-write: tear the partial
      // epoch down and go around again.
      stats_.transient_faults += 1;
      remove_epoch_files(epoch, false);
    }
  }
  if (!committed)
    throw IoError("CheckpointManager: epoch " + std::to_string(epoch) +
                  " failed to commit after " +
                  std::to_string(kMaxCommitAttempts) + " attempts");

  stats_.epochs_written += 1;
  for (auto& staged : staged_) staged = RankCheckpoint{};
  apply_retention();
  return epoch;
}

bool CheckpointManager::try_commit_epoch(std::uint64_t epoch,
                                         std::uint64_t step) {
  fsim::FsClient root(fs_, 0);
  root.mkdir(epoch_dir(epoch));
  {
    pmd::Series series(fs_, series_path(epoch), pmd::Access::create, nranks_,
                       ckpt_toml(config_));
    core::write_checkpoint_iteration(series, staged_, species_names_,
                                     nranks_);
    series.close();
  }

  // Validate before committing: re-open the container and CRC-verify every
  // chunk (catches silent bit flips and torn writes the write path did not
  // observe).  A corrupt epoch is torn down and rewritten by the caller.
  std::uint64_t bad = 0;
  try {
    bp::Reader reader = bp::Reader::open(fs_, 0, series_path(epoch));
    for (const auto& verdict : reader.verify())
      if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
          verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
        bad += 1;
  } catch (const FormatError&) {
    bad += 1;  // corrupt metadata: the container does not even open
  }
  if (bad > 0) {
    stats_.corrupt_chunks_detected += bad;
    remove_epoch_files(epoch, false);
    return false;
  }

  // Atomic commit point: MANIFEST appears fully written or not at all.
  JsonObject manifest;
  manifest["epoch"] = Json(epoch);
  manifest["step"] = Json(step);
  manifest["engine"] = Json(config_.engine);
  manifest["nranks"] = Json(nranks_);
  const std::string text = Json(std::move(manifest)).dump(2) + "\n";
  const std::string tmp = manifest_path(epoch) + ".tmp";
  root.write_file(tmp, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()));
  root.rename(tmp, manifest_path(epoch));
  return true;
}

void CheckpointManager::remove_epoch_files(std::uint64_t epoch,
                                           bool manifest_first) {
  fsim::FsClient root(fs_, 0);
  const std::string dir = epoch_dir(epoch);
  if (!fs_.store().dir_exists(dir)) return;
  // Un-commit first: once MANIFEST is gone a crash mid-removal leaves an
  // uncommitted (ignored) epoch instead of a committed-but-gutted one.
  if (manifest_first && fs_.store().file_exists(manifest_path(epoch)))
    root.unlink(manifest_path(epoch));
  std::vector<std::string> paths;
  for (const auto* node : fs_.store().list_recursive(dir))
    paths.push_back(node->path);
  for (const auto& path : paths)
    if (fs_.store().file_exists(path)) root.unlink(path);
}

void CheckpointManager::apply_retention() {
  auto epochs = committed_epochs();
  const std::size_t retain = std::size_t(config_.checkpoint_retain);
  while (epochs.size() > retain) {
    remove_epoch_files(epochs.front(), true);
    stats_.epochs_pruned += 1;
    epochs.erase(epochs.begin());
  }
}

std::vector<std::uint64_t> CheckpointManager::committed_epochs() const {
  std::vector<std::uint64_t> epochs;
  if (!fs_.store().dir_exists(resil_dir())) return epochs;
  for (const auto* node : fs_.store().list_recursive(resil_dir()))
    if (const auto epoch = manifest_epoch(node->path))
      epochs.push_back(*epoch);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

RestartReport CheckpointManager::restore(picmc::Simulation& sim) {
  RestartReport report;
  auto epochs = committed_epochs();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::uint64_t epoch = *it;
    report.epochs_tried += 1;
    std::uint64_t bad = 0;
    try {
      bp::Reader reader = bp::Reader::open(fs_, 0, series_path(epoch));
      for (const auto& verdict : reader.verify())
        if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
            verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
          bad += 1;
    } catch (const Error&) {
      bad += 1;
    }
    if (bad > 0) {
      stats_.corrupt_chunks_detected += bad;
      stats_.restore_fallbacks += 1;
      report.rejected.push_back(epoch);
      continue;
    }
    try {
      pmd::Series series(fs_, series_path(epoch), pmd::Access::read_only);
      core::restore_from_series(series, sim);
    } catch (const Error&) {
      // Every chunk verified, so this is a schema-level problem (e.g. a
      // checkpoint from a different communicator size); fall back anyway.
      stats_.restore_fallbacks += 1;
      report.rejected.push_back(epoch);
      continue;
    }
    report.recovered = true;
    report.epoch = epoch;
    report.step = sim.current_step();
    break;
  }
  return report;
}

std::optional<std::uint64_t> CheckpointManager::newest_verifying_epoch() {
  auto epochs = committed_epochs();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::uint64_t epoch = *it;
    std::uint64_t bad = 0;
    try {
      bp::Reader reader = bp::Reader::open(fs_, 0, series_path(epoch));
      for (const auto& verdict : reader.verify())
        if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
            verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
          bad += 1;
    } catch (const Error&) {
      bad += 1;
    }
    if (bad > 0) {
      stats_.corrupt_chunks_detected += bad;
      stats_.restore_fallbacks += 1;
      continue;
    }
    return epoch;
  }
  return std::nullopt;
}

void CheckpointManager::restore_epoch(std::uint64_t epoch,
                                      picmc::Simulation& sim) const {
  pmd::Series series(fs_, series_path(epoch), pmd::Access::read_only);
  core::restore_repartitioned(series, sim);
}

void CheckpointManager::record_recovery(double seconds) {
  stats_.recoveries += 1;
  stats_.t_recovery_s += seconds;
}

void CheckpointManager::record_degradation() { stats_.degradations += 1; }

void CheckpointManager::set_recovery_totals(std::uint64_t recoveries,
                                            std::uint64_t degradations,
                                            double t_recovery_s) {
  stats_.recoveries = recoveries;
  stats_.degradations = degradations;
  stats_.t_recovery_s = t_recovery_s;
}

ScrubReport CheckpointManager::scrub() {
  ScrubReport report;
  for (const std::uint64_t epoch : committed_epochs()) {
    report.epochs_scanned += 1;
    std::uint64_t bad = 0;
    try {
      bp::Reader reader = bp::Reader::open(fs_, 0, series_path(epoch));
      for (const auto& verdict : reader.verify())
        if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
            verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
          bad += 1;
    } catch (const Error&) {
      bad += 1;
    }
    if (bad > 0) {
      report.corrupt_epochs.push_back(epoch);
      report.corrupt_chunks += bad;
      stats_.corrupt_chunks_detected += bad;
    } else {
      report.epochs_ok += 1;
    }
  }
  return report;
}

Json CheckpointManager::stats_json() const {
  JsonObject o;
  o["epochs_written"] = Json(stats_.epochs_written);
  o["write_retries"] = Json(stats_.write_retries);
  o["transient_faults"] = Json(stats_.transient_faults);
  o["corrupt_chunks_detected"] = Json(stats_.corrupt_chunks_detected);
  o["restore_fallbacks"] = Json(stats_.restore_fallbacks);
  o["epochs_pruned"] = Json(stats_.epochs_pruned);
  o["recoveries"] = Json(stats_.recoveries);
  o["degradations"] = Json(stats_.degradations);
  o["t_recovery_s"] = Json(stats_.t_recovery_s);
  o["faults_injected_total"] = Json(fs_.injected_fault_count());
  o["retained_epochs"] = Json(std::uint64_t(committed_epochs().size()));
  return Json(std::move(o));
}

void CheckpointManager::write_stats_json() {
  const std::string text = stats_json().dump(2) + "\n";
  fsim::FsClient root(fs_, 0);
  const int fd = root.open(resil_dir() + "/resilience.json",
                           fsim::OpenMode::create_or_truncate);
  root.write(fd, std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()));
  root.close(fd);
}

// -- ResilientSink -----------------------------------------------------------

ResilientSink::ResilientSink(std::unique_ptr<core::DiagnosticsSink> inner,
                             std::shared_ptr<CheckpointManager> manager)
    : inner_(std::move(inner)), manager_(std::move(manager)) {
  if (!inner_ || !manager_)
    throw UsageError("ResilientSink: inner sink and manager required");
}

void ResilientSink::stage_diagnostics(int rank, const picmc::Simulation& sim,
                                      const picmc::DiagnosticSnapshot& snap) {
  inner_->stage_diagnostics(rank, sim, snap);
}

void ResilientSink::flush_diagnostics(std::uint64_t step, double time) {
  inner_->flush_diagnostics(step, time);
}

void ResilientSink::stage_checkpoint(int rank, const picmc::Simulation& sim) {
  manager_->stage(rank, sim);
}

void ResilientSink::flush_checkpoint() { manager_->commit(); }

void ResilientSink::synchronize() { inner_->synchronize(); }

void ResilientSink::close() {
  inner_->close();
  manager_->write_stats_json();
}

}  // namespace bitio::resil
