#include "resil/checkpoint_manager.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "bp/reader.hpp"
#include "util/error.hpp"
#include "util/hash64.hpp"

namespace bitio::resil {

using core::RankCheckpoint;

namespace {

/// Checkpoint engine config: shared-file aggregation, no profiling (the
/// epochs are many short-lived containers; profiling stays on the
/// diagnostics series).
std::string ckpt_toml(const core::Bit1IoConfig& config) {
  core::Bit1IoConfig c = config;
  c.num_aggregators = config.checkpoint_aggregators;
  c.profiling = false;
  return c.adios2_toml();
}

/// Parse the epoch number out of ".../epoch_<k>/MANIFEST"; nullopt for
/// paths that are not committed-epoch manifests.
std::optional<std::uint64_t> manifest_epoch(const std::string& path) {
  const std::string tail = "/MANIFEST";
  if (path.size() <= tail.size() ||
      path.compare(path.size() - tail.size(), tail.size(), tail) != 0)
    return std::nullopt;
  const std::string dir = fsim::base_name(path.substr(0, path.size() - tail.size()));
  const std::string prefix = "epoch_";
  if (dir.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = prefix.size(); i < dir.size(); ++i) {
    if (dir[i] < '0' || dir[i] > '9') return std::nullopt;
    epoch = epoch * 10 + std::uint64_t(dir[i] - '0');
  }
  return epoch;
}

}  // namespace

CheckpointManager::CheckpointManager(fsim::SharedFs& fs, std::string run_dir,
                                     core::Bit1IoConfig config, int nranks)
    : fs_(fs),
      run_dir_(std::move(run_dir)),
      config_(std::move(config)),
      nranks_(nranks) {
  if (nranks_ <= 0)
    throw UsageError("CheckpointManager: nranks must be positive");
  config_.validate();
  fsim::FsClient root(fs_, 0);
  root.mkdir(resil_dir());
  staged_.resize(std::size_t(nranks_));
  // Resume epoch numbering after whatever a previous incarnation committed.
  const auto epochs = committed_epochs();
  if (!epochs.empty()) next_epoch_ = epochs.back() + 1;
}

std::string CheckpointManager::epoch_dir(std::uint64_t epoch) const {
  return resil_dir() + "/epoch_" + std::to_string(epoch);
}

std::string CheckpointManager::series_path(std::uint64_t epoch) const {
  return epoch_dir(epoch) + "/dmp_file." + config_.engine;
}

std::string CheckpointManager::manifest_path(std::uint64_t epoch) const {
  return epoch_dir(epoch) + "/MANIFEST";
}

void CheckpointManager::stage(int rank, const picmc::Simulation& sim) {
  if (rank < 0 || rank >= nranks_)
    throw UsageError("CheckpointManager: rank out of range");
  // First staging call fixes the species layout; later calls must agree.
  std::vector<std::string> names;
  for (std::size_t s = 0; s < sim.species_count(); ++s)
    names.push_back(sim.species(s).config.name);
  auto staged = core::capture_rank_state(sim);
  util::MutexLock lock(stage_mutex_);
  if (species_names_.empty())
    species_names_ = names;
  else if (names != species_names_)
    throw UsageError("CheckpointManager: inconsistent species layout");
  staged_[std::size_t(rank)] = std::move(staged);
}

std::uint64_t CheckpointManager::commit() {
  // Held across the whole commit: try_commit_epoch reads the staging table
  // and a straggler stage() must not rewrite a slot mid-epoch.
  util::MutexLock lock(stage_mutex_);
  bool any = false;
  std::uint64_t step = 0;
  for (const auto& staged : staged_) {
    any |= staged.present;
    step = std::max(step, staged.step);
  }
  if (!any) throw UsageError("CheckpointManager: no staged checkpoint");

  // Full or delta?  A delta needs a committed base to diff against and is
  // bounded by checkpoint_full_interval: a fresh incarnation and every Nth
  // epoch write self-contained full dumps.
  const auto blocks = core::checkpoint_blocks(staged_, species_names_,
                                              nranks_);
  const bool want_delta =
      config_.checkpoint_full_interval > 1 && !base_map_.empty() &&
      commits_since_full_ + 1 < std::uint64_t(config_.checkpoint_full_interval);
  const std::vector<BlockRef> refs =
      want_delta ? plan_refs(blocks) : std::vector<BlockRef>{};
  const std::string kind = want_delta ? "delta" : "full";

  const std::uint64_t epoch = next_epoch_++;
  bool committed = false;
  for (int attempt = 0; attempt < kMaxCommitAttempts && !committed;
       ++attempt) {
    if (attempt > 0) {
      // Bounded exponential backoff before the retry, charged to rank 0's
      // timeline so the cost shows up in the replay like a real sleep.
      stats_.write_retries += 1;
      fsim::FsClient(fs_, 0).charge_cpu(
          kBackoffBaseSeconds * double(1ull << (attempt - 1)), "backoff");
    }
    try {
      committed = try_commit_epoch(epoch, step, kind, refs);
    } catch (const IoError&) {
      // Transient injected failure (EIO/ENOSPC) mid-write: tear the partial
      // epoch down and go around again.
      stats_.transient_faults += 1;
      remove_epoch_files(epoch, false);
    }
  }
  if (!committed)
    throw IoError("CheckpointManager: epoch " + std::to_string(epoch) +
                  " failed to commit after " +
                  std::to_string(kMaxCommitAttempts) + " attempts");

  stats_.epochs_written += 1;
  if (want_delta) {
    stats_.delta_epochs += 1;
    std::uint64_t saved = 0;
    for (const BlockRef& ref : refs) saved += ref.bytes;
    stats_.dedup_bytes_saved += saved;
    // Surface the dedup decision in the trace so the Darshan log can count
    // delta epochs and the bytes they avoided writing.
    fsim::FsClient trace(fs_, 0);
    trace.charge_cpu(0.0, "delta_commit");
    trace.charge_cpu(0.0, "dedup", saved);
  }
  commits_since_full_ = want_delta ? commits_since_full_ + 1 : 0;

  // The committed epoch becomes the new base for every block it wrote;
  // referenced blocks keep pointing at the epoch that stores their bytes.
  std::set<std::pair<std::string, int>> skipped;
  for (const BlockRef& ref : refs) skipped.insert({ref.var, ref.rank});
  std::map<std::pair<std::string, int>, BlockRef> next_map;
  for (const auto& block : blocks) {
    const std::pair<std::string, int> key{block.var, block.rank};
    if (skipped.count(key)) {
      next_map[key] = base_map_.at(key);
    } else {
      next_map[key] = BlockRef{block.var, block.rank, block.offset,
                               block.count, block.bytes, block.hash, epoch};
    }
  }
  base_map_ = std::move(next_map);

  for (auto& staged : staged_) staged = RankCheckpoint{};
  apply_retention();
  return epoch;
}

std::vector<BlockRef> CheckpointManager::plan_refs(
    const std::vector<core::CheckpointBlock>& blocks) {
  // A block dedups when its content hash and count match the last
  // committed copy AND that copy is still committed and really carries the
  // expected chunk — a ref the chain could not resolve must be written
  // instead, never committed.
  std::vector<BlockRef> refs;
  std::set<std::uint64_t> live;
  for (const std::uint64_t epoch : committed_epochs()) live.insert(epoch);
  std::map<std::uint64_t, std::unique_ptr<bp::Reader>> readers;
  for (const auto& block : blocks) {
    const auto it = base_map_.find({block.var, block.rank});
    if (it == base_map_.end()) continue;
    const BlockRef& base = it->second;
    if (base.hash != block.hash || base.count != block.count) continue;
    if (!live.count(base.epoch)) continue;
    auto reader_it = readers.find(base.epoch);
    if (reader_it == readers.end()) {
      try {
        reader_it = readers
                        .emplace(base.epoch,
                                 std::make_unique<bp::Reader>(bp::Reader::open(
                                     fs_, 0, series_path(base.epoch))))
                        .first;
      } catch (const Error&) {
        continue;  // base container unreadable: write the block
      }
    }
    const bp::ChunkRecord* chunk = reader_it->second->find_chunk(
        0, block.var, std::uint32_t(block.rank));
    if (!chunk || !chunk->has_content_hash ||
        chunk->content_hash != block.hash)
      continue;
    refs.push_back(BlockRef{block.var, block.rank, block.offset, block.count,
                            block.bytes, block.hash, base.epoch});
  }
  return refs;
}

bool CheckpointManager::try_commit_epoch(std::uint64_t epoch,
                                         std::uint64_t step,
                                         const std::string& kind,
                                         const std::vector<BlockRef>& refs) {
  fsim::FsClient root(fs_, 0);
  root.mkdir(epoch_dir(epoch));
  std::set<std::pair<std::string, int>> skip;
  for (const BlockRef& ref : refs) skip.insert({ref.var, ref.rank});
  {
    pmd::Series series(fs_, series_path(epoch), pmd::Access::create, nranks_,
                       ckpt_toml(config_));
    core::write_checkpoint_iteration(
        series, staged_, species_names_, nranks_,
        [&skip](const std::string& var, int rank) {
          return skip.count({var, rank}) == 0;
        });
    series.close();
  }

  // Validate before committing: re-open the container and CRC-verify every
  // chunk (catches silent bit flips and torn writes the write path did not
  // observe).  A corrupt epoch is torn down and rewritten by the caller.
  std::uint64_t bad = 0;
  try {
    bp::Reader reader = bp::Reader::open(fs_, 0, series_path(epoch));
    for (const auto& verdict : reader.verify())
      if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
          verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
        bad += 1;
  } catch (const FormatError&) {
    bad += 1;  // corrupt metadata: the container does not even open
  }
  if (bad > 0) {
    stats_.corrupt_chunks_detected += bad;
    remove_epoch_files(epoch, false);
    return false;
  }

  // Atomic commit point: MANIFEST appears fully written or not at all.
  // For a delta epoch it also IS the chain: the references into base
  // epochs commit together with the epoch, in the same rename.
  EpochManifest manifest;
  manifest.epoch = epoch;
  manifest.step = step;
  manifest.engine = config_.engine;
  manifest.nranks = nranks_;
  manifest.kind = kind;
  manifest.refs = refs;
  std::set<std::uint64_t> bases;
  for (const BlockRef& ref : refs) bases.insert(ref.epoch);
  manifest.base_epochs.assign(bases.begin(), bases.end());
  const std::string text = manifest.to_json().dump(2) + "\n";
  const std::string tmp = manifest_path(epoch) + ".tmp";
  root.write_file(tmp, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()));
  root.rename(tmp, manifest_path(epoch));
  return true;
}

void CheckpointManager::remove_epoch_files(std::uint64_t epoch,
                                           bool manifest_first) {
  fsim::FsClient root(fs_, 0);
  const std::string dir = epoch_dir(epoch);
  if (!fs_.store().dir_exists(dir)) return;
  // Un-commit first: once MANIFEST is gone a crash mid-removal leaves an
  // uncommitted (ignored) epoch instead of a committed-but-gutted one.
  if (manifest_first && fs_.store().file_exists(manifest_path(epoch)))
    root.unlink(manifest_path(epoch));
  std::vector<std::string> paths;
  for (const auto* node : fs_.store().list_recursive(dir))
    paths.push_back(node->path);
  for (const auto& path : paths)
    if (fs_.store().file_exists(path)) root.unlink(path);
}

void CheckpointManager::apply_retention() {
  const auto epochs = committed_epochs();
  const std::size_t retain = std::size_t(config_.checkpoint_retain);
  if (epochs.size() <= retain) return;
  // Keep the newest `retain` epochs — and every base epoch a kept delta
  // still references: pruning a base would break a retained chain.  Refs
  // point one hop at the storing epoch, but the closure runs to a fixpoint
  // anyway; the full interval bounds how many extra epochs survive.
  std::set<std::uint64_t> keep(epochs.end() - std::ptrdiff_t(retain),
                               epochs.end());
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::uint64_t epoch : std::vector<std::uint64_t>(keep.begin(),
                                                                keep.end())) {
      const auto manifest = read_manifest(epoch);
      if (!manifest) continue;
      for (const std::uint64_t base : manifest->base_epochs)
        grew |= keep.insert(base).second;
    }
  }
  for (const std::uint64_t epoch : epochs) {
    if (keep.count(epoch)) continue;
    remove_epoch_files(epoch, true);
    stats_.epochs_pruned += 1;
  }
}

std::vector<std::uint64_t> CheckpointManager::committed_epochs() const {
  std::vector<std::uint64_t> epochs;
  if (!fs_.store().dir_exists(resil_dir())) return epochs;
  for (const auto* node : fs_.store().list_recursive(resil_dir()))
    if (const auto epoch = manifest_epoch(node->path))
      epochs.push_back(*epoch);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

std::optional<EpochManifest> CheckpointManager::read_manifest(
    std::uint64_t epoch) const {
  if (!fs_.store().file_exists(manifest_path(epoch))) return std::nullopt;
  try {
    fsim::FsClient root(fs_, 0);
    const auto bytes = root.read_all(manifest_path(epoch));
    const std::string text(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size());
    return EpochManifest::from_json(Json::parse(text));
  } catch (const Error&) {
    return std::nullopt;  // torn or malformed: the epoch does not verify
  }
}

std::uint64_t CheckpointManager::chain_bad_chunks(std::uint64_t epoch) {
  const auto manifest = read_manifest(epoch);
  if (!manifest) return 1;
  std::map<std::uint64_t, std::unique_ptr<bp::Reader>> readers;
  auto reader_for = [&](std::uint64_t e) -> bp::Reader* {
    auto it = readers.find(e);
    if (it == readers.end()) {
      try {
        it = readers
                 .emplace(e, std::make_unique<bp::Reader>(
                                 bp::Reader::open(fs_, 0, series_path(e))))
                 .first;
      } catch (const Error&) {
        return nullptr;
      }
    }
    return it->second.get();
  };

  std::uint64_t bad = 0;
  // Own chunks: the CRC scrub every epoch always had.
  bp::Reader* own = reader_for(epoch);
  if (!own) return 1;
  for (const auto& verdict : own->verify())
    if (verdict.status == bp::Reader::ChunkVerdict::Status::short_read ||
        verdict.status == bp::Reader::ChunkVerdict::Status::crc_mismatch)
      bad += 1;
  // Chain links: every reference must resolve to a committed base whose
  // stored chunk still reads back (CRC) with the promised content hash.
  for (const BlockRef& ref : manifest->refs) {
    if (!fs_.store().file_exists(manifest_path(ref.epoch))) {
      bad += 1;  // base epoch pruned or never committed: broken link
      continue;
    }
    bp::Reader* base = reader_for(ref.epoch);
    const bp::ChunkRecord* chunk =
        base ? base->find_chunk(0, ref.var, std::uint32_t(ref.rank))
             : nullptr;
    if (!chunk || !chunk->has_content_hash ||
        chunk->content_hash != ref.hash) {
      bad += 1;
      continue;
    }
    try {
      const auto raw = base->read_chunk(0, ref.var, std::uint32_t(ref.rank));
      if (util::hash64(raw) != ref.hash) bad += 1;
    } catch (const Error&) {
      bad += 1;
    }
  }
  return bad;
}

void CheckpointManager::restore_via_chain(std::uint64_t epoch,
                                          picmc::Simulation& sim,
                                          bool repartition) {
  const auto manifest = read_manifest(epoch);
  if (!manifest)
    throw UsageError("CheckpointManager: epoch " + std::to_string(epoch) +
                     " is not committed");
  const auto t0 = std::chrono::steady_clock::now();
  ChainCheckpointSource source(
      fs_, *manifest,
      [this](std::uint64_t e) { return series_path(e); });
  if (repartition)
    core::restore_repartitioned(source, sim);
  else
    core::restore_from_source(source, sim);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats_.blocks_restored += source.blocks_read();
  stats_.t_restore_s += elapsed;
  // Wall time and block count of the chain walk, surfaced in the trace for
  // the Darshan log's restore counters.
  fsim::FsClient(fs_, 0).charge_cpu(elapsed, "restore_chain", 0,
                                    std::uint32_t(source.blocks_read()));
}

RestartReport CheckpointManager::restore(picmc::Simulation& sim) {
  RestartReport report;
  auto epochs = committed_epochs();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::uint64_t epoch = *it;
    report.epochs_tried += 1;
    const std::uint64_t bad = chain_bad_chunks(epoch);
    if (bad > 0) {
      stats_.corrupt_chunks_detected += bad;
      stats_.restore_fallbacks += 1;
      report.rejected.push_back(epoch);
      continue;
    }
    try {
      restore_via_chain(epoch, sim, /*repartition=*/false);
    } catch (const Error&) {
      // Every chunk verified, so this is a schema-level problem (e.g. a
      // checkpoint from a different communicator size); fall back anyway.
      stats_.restore_fallbacks += 1;
      report.rejected.push_back(epoch);
      continue;
    }
    report.recovered = true;
    report.epoch = epoch;
    report.step = sim.current_step();
    break;
  }
  return report;
}

std::optional<std::uint64_t> CheckpointManager::newest_verifying_epoch() {
  auto epochs = committed_epochs();
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::uint64_t epoch = *it;
    const std::uint64_t bad = chain_bad_chunks(epoch);
    if (bad > 0) {
      stats_.corrupt_chunks_detected += bad;
      stats_.restore_fallbacks += 1;
      continue;
    }
    return epoch;
  }
  return std::nullopt;
}

void CheckpointManager::restore_epoch(std::uint64_t epoch,
                                      picmc::Simulation& sim) {
  restore_via_chain(epoch, sim, /*repartition=*/true);
}

void CheckpointManager::record_recovery(double seconds) {
  stats_.recoveries += 1;
  stats_.t_recovery_s += seconds;
}

void CheckpointManager::record_degradation() { stats_.degradations += 1; }

void CheckpointManager::set_recovery_totals(std::uint64_t recoveries,
                                            std::uint64_t degradations,
                                            double t_recovery_s) {
  stats_.recoveries = recoveries;
  stats_.degradations = degradations;
  stats_.t_recovery_s = t_recovery_s;
}

ScrubReport CheckpointManager::scrub() {
  ScrubReport report;
  std::set<std::uint64_t> committed;
  for (const std::uint64_t epoch : committed_epochs()) {
    committed.insert(epoch);
    report.epochs_scanned += 1;
    const std::uint64_t bad = chain_bad_chunks(epoch);
    if (bad > 0) {
      report.corrupt_epochs.push_back(epoch);
      report.corrupt_chunks += bad;
      stats_.corrupt_chunks_detected += bad;
    } else {
      report.epochs_ok += 1;
    }
  }

  // Orphan cleanup: an epoch_<k> directory holding files but no MANIFEST
  // is dead weight — the residue of a crash between the prune's MANIFEST
  // unlink and its file unlinks, or of a commit that never renamed.  Both
  // are invisible to restore (no MANIFEST, no epoch); reclaim the bytes.
  if (fs_.store().dir_exists(resil_dir())) {
    std::set<std::uint64_t> orphans;
    const std::string prefix = resil_dir() + "/epoch_";
    for (const auto* node : fs_.store().list_recursive(resil_dir())) {
      if (node->path.compare(0, prefix.size(), prefix) != 0) continue;
      std::uint64_t epoch = 0;
      std::size_t i = prefix.size();
      for (; i < node->path.size() && node->path[i] >= '0' &&
             node->path[i] <= '9';
           ++i)
        epoch = epoch * 10 + std::uint64_t(node->path[i] - '0');
      if (i == prefix.size() || i == node->path.size() ||
          node->path[i] != '/')
        continue;
      if (!committed.count(epoch)) orphans.insert(epoch);
    }
    for (const std::uint64_t epoch : orphans) {
      remove_epoch_files(epoch, true);
      report.orphans_cleaned += 1;
    }
  }
  return report;
}

Json CheckpointManager::stats_json() const {
  JsonObject o;
  o["epochs_written"] = Json(stats_.epochs_written);
  o["write_retries"] = Json(stats_.write_retries);
  o["transient_faults"] = Json(stats_.transient_faults);
  o["corrupt_chunks_detected"] = Json(stats_.corrupt_chunks_detected);
  o["restore_fallbacks"] = Json(stats_.restore_fallbacks);
  o["epochs_pruned"] = Json(stats_.epochs_pruned);
  o["recoveries"] = Json(stats_.recoveries);
  o["degradations"] = Json(stats_.degradations);
  o["t_recovery_s"] = Json(stats_.t_recovery_s);
  o["delta_epochs"] = Json(stats_.delta_epochs);
  o["dedup_bytes_saved"] = Json(stats_.dedup_bytes_saved);
  o["blocks_restored"] = Json(stats_.blocks_restored);
  o["t_restore_s"] = Json(stats_.t_restore_s);
  o["faults_injected_total"] = Json(fs_.injected_fault_count());
  o["retained_epochs"] = Json(std::uint64_t(committed_epochs().size()));
  return Json(std::move(o));
}

void CheckpointManager::write_stats_json() {
  const std::string text = stats_json().dump(2) + "\n";
  fsim::FsClient root(fs_, 0);
  const int fd = root.open(resil_dir() + "/resilience.json",
                           fsim::OpenMode::create_or_truncate);
  root.write(fd, std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()));
  root.close(fd);
}

// -- ResilientSink -----------------------------------------------------------

ResilientSink::ResilientSink(std::unique_ptr<core::DiagnosticsSink> inner,
                             std::shared_ptr<CheckpointManager> manager)
    : inner_(std::move(inner)), manager_(std::move(manager)) {
  if (!inner_ || !manager_)
    throw UsageError("ResilientSink: inner sink and manager required");
}

void ResilientSink::stage_diagnostics(int rank, const picmc::Simulation& sim,
                                      const picmc::DiagnosticSnapshot& snap) {
  inner_->stage_diagnostics(rank, sim, snap);
}

void ResilientSink::flush_diagnostics(std::uint64_t step, double time) {
  inner_->flush_diagnostics(step, time);
}

void ResilientSink::stage_checkpoint(int rank, const picmc::Simulation& sim) {
  manager_->stage(rank, sim);
}

void ResilientSink::flush_checkpoint() { manager_->commit(); }

void ResilientSink::synchronize() { inner_->synchronize(); }

void ResilientSink::close() {
  inner_->close();
  manager_->write_stats_json();
}

}  // namespace bitio::resil
