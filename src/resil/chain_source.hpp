#pragma once
// CheckpointSource over a delta-epoch chain: resolves each requested range
// of a checkpoint variable through the footer indexes of the epoch
// containers that physically store its blocks.
//
// A delta epoch's container holds only the blocks whose content changed
// since the previous epoch; its MANIFEST lists the rest as references
// {var, rank, offset, count, hash, epoch} into earlier *base* epochs.
// ChainCheckpointSource merges the target epoch's own chunks (from its
// bp::Reader metadata) with those references into one block table per
// variable, then serves ranged reads by fetching exactly the blocks the
// range overlaps — one random-access read_chunk per block, CRC-verified by
// the bp layer and content-hash-checked against the manifest reference.
// Blocks outside the range are never read: an O(1)-seek restore no matter
// how long the chain or how large the untouched remainder of the arrays.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bp/reader.hpp"
#include "core/checkpoint_source.hpp"
#include "fsim/posix_fs.hpp"
#include "util/json.hpp"

namespace bitio::resil {

/// One manifest reference: a block of this epoch whose bytes live in an
/// earlier epoch's container.
struct BlockRef {
  std::string var;
  int rank = 0;
  std::uint64_t offset = 0;  // element offset in *this* epoch's global array
  std::uint64_t count = 0;   // element count
  std::uint64_t bytes = 0;   // raw payload bytes
  std::uint64_t hash = 0;    // FNV-1a 64 the stored chunk must match
  std::uint64_t epoch = 0;   // the epoch physically storing the bytes
};

/// MANIFEST schema version, written as "manifest_version".  Bump it
/// whenever to_json gains, drops, or reshapes a field — the wire-format
/// analyzer rule fingerprints to_json and fails when the serialized
/// fields drift while this constant stands still.  Version history:
/// 1 = flat full-epoch manifest (no chain fields, implied by absence),
/// 2 = delta chains (kind/base_epochs/refs) + explicit version field.
inline constexpr int kManifestVersion = 2;

/// Parsed MANIFEST of a committed epoch.  Pre-delta manifests (no "kind")
/// parse as kind "full" with no refs.
struct EpochManifest {
  std::uint64_t epoch = 0;
  std::uint64_t step = 0;
  int nranks = 0;
  std::string engine;
  std::string kind = "full";  // "full" | "delta"
  std::vector<std::uint64_t> base_epochs;
  std::vector<BlockRef> refs;

  Json to_json() const;
  static EpochManifest from_json(const Json& doc);
};

class ChainCheckpointSource final : public core::CheckpointSource {
public:
  /// `series_path(epoch)` must return the container path of any committed
  /// epoch the chain touches; the manifest supplies the chain membership.
  /// Readers for base epochs are opened lazily and cached.
  ChainCheckpointSource(fsim::SharedFs& fs, EpochManifest manifest,
                        std::function<std::string(std::uint64_t)> series_path);

  std::uint64_t step() override { return manifest_.step; }
  std::uint64_t writer_ranks() override {
    return std::uint64_t(manifest_.nranks);
  }
  std::vector<std::uint64_t> read_u64(const std::string& var,
                                      std::uint64_t elem_offset,
                                      std::uint64_t count) override;
  std::vector<double> read_f64(const std::string& var,
                               std::uint64_t elem_offset,
                               std::uint64_t count) override;

  /// Blocks fetched by ranged reads so far (the restore-cost counter the
  /// Darshan log reports as blocks_restored).
  std::uint64_t blocks_read() const { return blocks_read_; }

private:
  /// Where one block of a variable lives: which epoch's container, which
  /// writer rank's chunk, and the content hash it must carry (0 = own
  /// block, hash enforced only when the chunk records one).
  struct BlockHome {
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
    std::uint64_t epoch = 0;
    int rank = 0;
    std::uint64_t hash = 0;
    bool check_hash = false;
  };

  bp::Reader& reader_for(std::uint64_t epoch);
  /// Raw bytes of the variable's global array over [elem_offset,
  /// elem_offset + count), fetched block by block (8-byte elements).
  std::vector<std::uint8_t> read_range(const std::string& var,
                                       std::uint64_t elem_offset,
                                       std::uint64_t count);

  fsim::SharedFs& fs_;
  EpochManifest manifest_;
  std::function<std::string(std::uint64_t)> series_path_;
  std::map<std::string, std::vector<BlockHome>> blocks_;  // per variable
  std::map<std::uint64_t, std::unique_ptr<bp::Reader>> readers_;
  std::uint64_t blocks_read_ = 0;
};

}  // namespace bitio::resil
