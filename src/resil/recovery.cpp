#include "resil/recovery.hpp"

#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "core/degrade.hpp"
#include "picmc/diagnostics.hpp"
#include "smpi/comm.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace bitio::resil {

namespace {

/// Per-shrink-generation shared state, created by that generation's rank 0
/// before the entry barrier and read by everyone after it.
struct GenState {
  std::shared_ptr<CheckpointManager> manager;
  std::shared_ptr<core::DegradingSink> sink;
};

}  // namespace

ResilientRunReport run_resilient_spmd(fsim::SharedFs& fs,
                                      const ResilientRunConfig& cfg) {
  cfg.io.validate();
  if (cfg.nranks <= 0)
    throw UsageError("run_resilient_spmd: nranks must be positive");
  if (cfg.max_recoveries < 0)
    throw UsageError("run_resilient_spmd: max_recoveries must be >= 0");
  if (!cfg.io.fault_plan.empty()) fs.set_fault_plan(cfg.io.fault_plan);

  // Shared run state across rank threads and shrink generations.
  std::mutex state_mutex;
  std::map<int, GenState> generations;
  std::shared_ptr<CheckpointManager> final_manager;
  std::uint64_t final_step = 0;
  std::uint64_t last_restored_epoch = 0;
  std::uint64_t last_restored_step = 0;
  bool restarted_from_scratch = false;
  int degradations = 0;
  double t_recovery = 0.0;

  // "abort" keeps the old behaviour: zero re-entries, the survivors'
  // RankFailedError becomes the run error.
  const int max_recoveries =
      cfg.io.recovery == "shrink" ? cfg.max_recoveries : 0;

  const auto body = [&](smpi::Comm& comm, smpi::RecoveryContext& ctx) {
    const auto entered = std::chrono::steady_clock::now();

    if (comm.rank() == 0) {
      GenState gen;
      // Same run_dir for every generation's manager: epoch numbering (and
      // retention) resumes over the epochs earlier generations committed.
      gen.manager = std::make_shared<CheckpointManager>(fs, cfg.run_dir,
                                                        cfg.io, comm.size());
      gen.sink = core::make_degrading_sink(
          fs, strfmt("%s/gen_%d", cfg.run_dir.c_str(), ctx.generation),
          cfg.io, comm.size());
      gen.sink->set_transition_callback(
          [&state_mutex, &degradations](core::IoServiceLevel from,
                                        core::IoServiceLevel to,
                                        const std::string&) {
            if (int(to) < int(from)) {
              std::lock_guard<std::mutex> lock(state_mutex);
              ++degradations;
            }
          });
      std::lock_guard<std::mutex> lock(state_mutex);
      generations[ctx.generation] = std::move(gen);
    }
    comm.barrier();
    GenState gen;
    {
      std::lock_guard<std::mutex> lock(state_mutex);
      gen = generations.at(ctx.generation);
    }

    picmc::Simulation sim(cfg.sim, comm.rank(), comm.size());
    if (ctx.recovered) {
      // Restore: rank 0 picks the newest verifying epoch, everyone agrees
      // on it, and the survivors re-partition its particle population.
      std::uint64_t epoch = 0;
      if (comm.rank() == 0)
        epoch = gen.manager->newest_verifying_epoch().value_or(0);
      epoch = comm.bcast(epoch, 0);
      if (epoch > 0)
        gen.manager->restore_epoch(epoch, sim);
      else
        sim.initialize();  // nothing to restore: start over, shrunken
      comm.barrier();
      if (comm.rank() == 0) {
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          entered)
                .count();
        {
          std::lock_guard<std::mutex> lock(state_mutex);
          t_recovery += seconds;
          last_restored_epoch = epoch;
          last_restored_step = sim.current_step();
          if (epoch == 0) restarted_from_scratch = true;
        }
        // Charge the recovery to the trace so Darshan capture counts it.
        fsim::FsClient(fs, 0).charge_cpu(seconds, "recovery");
        gen.manager->record_recovery(seconds);
        log_info(strfmt(
            "recovery %d: %d survivors, %s, resuming at step %llu",
            ctx.generation, comm.size(),
            epoch > 0 ? strfmt("restored epoch %llu",
                               (unsigned long long)epoch)
                          .c_str()
                      : "no verifying epoch (restart from scratch)",
            (unsigned long long)sim.current_step()));
      }
      comm.barrier();
    } else {
      sim.initialize();
    }

    auto reduce = [&](std::span<double> density) {
      for (auto& v : density) v = comm.allreduce(v, smpi::Op::sum);
    };

    sim.run(reduce, [&](picmc::Simulation& s) {
      const std::uint64_t step = s.current_step();

      // Detect: rank_crash rules are keyed by *original* rank so the fault
      // plan keeps naming the same logical rank across shrinks.  The dead
      // rank never re-enters, so a restored run cannot re-crash on the
      // same rule.
      if (fs.should_crash(ctx.original_rank, step)) {
        fsim::FsClient(fs, fsim::ClientId(ctx.original_rank))
            .note_fault(fsim::FaultKind::rank_crash);
        throw smpi::RankFailure(
            comm.rank(),
            strfmt("rank %d (original %d) crashed at step %llu", comm.rank(),
                   ctx.original_rank, (unsigned long long)step));
      }

      if (cfg.sim.datfile > 0 && step % cfg.sim.datfile == 0) {
        const auto snap = picmc::Diagnostics::sample_now(s);
        gen.sink->stage_diagnostics(comm.rank(), s, snap);
        comm.barrier();
        if (comm.rank() == 0)
          gen.sink->flush_diagnostics(step, double(step) * cfg.sim.dt);
        comm.barrier();
      }

      const int interval = cfg.io.checkpoint_interval;
      if (interval > 0 && step % std::uint64_t(interval) == 0) {
        gen.manager->stage(comm.rank(), s);
        comm.barrier();
        if (comm.rank() == 0) {
          try {
            gen.manager->commit();
          } catch (const IoError& e) {
            // An epoch that exhausted its commit retries is a lost restart
            // point, not a lost run; older epochs still cover us.
            log_warn(std::string("resilient run: checkpoint commit "
                                 "failed: ") +
                     e.what());
          }
        }
        comm.barrier();
      }
    });

    comm.barrier();
    if (comm.rank() == 0) {
      try {
        gen.sink->close();
      } catch (const Error& e) {
        log_warn(std::string("resilient run: sink close failed: ") +
                 e.what());
      }
      std::lock_guard<std::mutex> lock(state_mutex);
      final_step = sim.current_step();
      final_manager = gen.manager;
    }
    comm.barrier();
  };

  const auto spmd =
      smpi::run_spmd_supervised(cfg.nranks, body, max_recoveries);

  ResilientRunReport report;
  report.recoveries = spmd.recoveries;
  report.final_size = spmd.final_size;
  report.crashed_ranks = spmd.crashed_ranks;
  report.final_step = final_step;
  report.last_restored_epoch = last_restored_epoch;
  report.restored_step = last_restored_step;
  report.restarted_from_scratch = restarted_from_scratch;
  report.degradations = degradations;
  report.t_recovery_s = t_recovery;
  if (final_manager) {
    final_manager->set_recovery_totals(std::uint64_t(spmd.recoveries),
                                       std::uint64_t(degradations),
                                       t_recovery);
    final_manager->write_stats_json();
    report.stats = final_manager->stats();
  }
  return report;
}

}  // namespace bitio::resil
