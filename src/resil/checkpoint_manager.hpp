#pragma once
// The resilience layer: versioned checkpoint epochs with atomic commit,
// verification, retention, retry, and epoch-by-epoch restart fallback.
//
// The adaptor's dmp_file series keeps exactly one checkpoint (iteration 0
// is overwritten in place), so a fault during the overwrite can destroy the
// only restart point.  CheckpointManager instead writes each checkpoint as
// its own immutable *epoch*:
//
//   <run>/resil/epoch_<k>/dmp_file.<engine>   openPMD series, same schema
//                                             as the adaptor's checkpoints
//   <run>/resil/epoch_<k>/MANIFEST            JSON {epoch, step, nranks, ...}
//
// Incremental epochs: with checkpoint_full_interval > 1 only every Nth
// epoch is a self-contained *full* dump.  The epochs between are *delta*
// epochs — commit diffs the staged blocks (content hash per (variable,
// rank) chunk, core::checkpoint_blocks) against the last committed epoch,
// writes only the changed blocks, and records the unchanged ones in the
// MANIFEST as references into the epochs that physically store their bytes
// (one hop, never a chain of indirections).  The MANIFEST also lists the
// base epochs the delta depends on; retention never prunes a base epoch a
// retained delta still references, and the full interval bounds how long a
// chain can grow.  Restore resolves a survivor's ranges through the chain
// (resil::ChainCheckpointSource), reading and CRC-verifying only the
// referenced blocks; a broken link anywhere in a chain fails that epoch's
// verification and restart falls back chain by chain.
//
// Commit protocol (per epoch): write the series, re-open it with bp::Reader
// and CRC-verify every chunk (format v5 end-to-end integrity), then write
// MANIFEST.tmp and rename() it to MANIFEST — the atomic commit point.  An
// epoch without a MANIFEST does not exist.  Transient injected failures
// (EIO/ENOSPC) are retried with bounded exponential backoff (charged to the
// rank's timeline under the "backoff" tag); an epoch that fails CRC
// validation is torn down and rewritten.  After a successful commit, epochs
// beyond the newest `checkpoint_retain` are pruned (MANIFEST first, so a
// crash mid-prune never leaves a committed-but-gutted epoch).
//
// Restart walks committed epochs newest-first, scrubs each with
// bp::Reader::verify(), and restores the simulation bit-exactly from the
// first epoch that verifies — silent corruption of the newest epoch falls
// back to the one before it.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "core/checkpoint_payload.hpp"
#include "core/diagnostics_sink.hpp"
#include "resil/chain_source.hpp"
#include "core/io_config.hpp"
#include "fsim/posix_fs.hpp"
#include "picmc/simulation.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::resil {

/// Counters the resilience layer accumulates across commits/restores (the
/// numbers resilience.json and the resilience_sweep bench report).
struct ResilienceStats {
  std::uint64_t epochs_written = 0;    // committed epochs
  std::uint64_t write_retries = 0;     // commit attempts retried (any cause)
  std::uint64_t transient_faults = 0;  // EIO/ENOSPC caught during commit
  std::uint64_t corrupt_chunks_detected = 0;  // CRC/short-read verdicts
  std::uint64_t restore_fallbacks = 0;        // epochs rejected at restart
  std::uint64_t epochs_pruned = 0;            // retention deletions
  // Online-recovery counters (PR "Online failure recovery"):
  std::uint64_t recoveries = 0;     // shrink-restarts completed
  std::uint64_t degradations = 0;   // I/O ladder step-downs observed
  double t_recovery_s = 0.0;        // wall seconds spent inside recoveries
  // Incremental-checkpoint counters (PR "Incremental checkpoint epochs"):
  std::uint64_t delta_epochs = 0;       // committed epochs of kind "delta"
  std::uint64_t dedup_bytes_saved = 0;  // bytes referenced instead of written
  std::uint64_t blocks_restored = 0;    // blocks fetched by chain restores
  double t_restore_s = 0.0;             // wall seconds inside chain restores
};

/// Outcome of restore(): which epoch recovered the run, and what was
/// rejected on the way there.
struct RestartReport {
  bool recovered = false;
  std::uint64_t epoch = 0;  // the epoch that restored the simulation
  std::uint64_t step = 0;   // simulation step of that epoch
  int epochs_tried = 0;
  std::vector<std::uint64_t> rejected;  // epochs that failed verification
};

/// Outcome of a scrub() pass over every committed epoch.
struct ScrubReport {
  int epochs_scanned = 0;
  int epochs_ok = 0;
  std::vector<std::uint64_t> corrupt_epochs;
  std::uint64_t corrupt_chunks = 0;  // bad own chunks + broken chain links
  // Uncommitted epoch_<k> directories whose files scrub() removed — the
  // residue of a crash inside the prune window (MANIFEST already gone,
  // data files still there) or of a commit that never reached its rename.
  int orphans_cleaned = 0;
};

class CheckpointManager {
public:
  /// Commit gives up after this many attempts (initial try + retries).
  static constexpr int kMaxCommitAttempts = 5;
  /// Backoff charged before retry i (doubles each time): 2^i * this.
  static constexpr double kBackoffBaseSeconds = 1e-3;

  /// `config` supplies engine/codec/checkpoint_aggregators (series layout),
  /// checkpoint_retain (retention depth), and is validated.  Epoch
  /// numbering resumes after any epochs already committed under `run_dir`.
  CheckpointManager(fsim::SharedFs& fs, std::string run_dir,
                    core::Bit1IoConfig config, int nranks);

  /// Stage one rank's restart state for the next commit().  Thread-safe in
  /// the same sense as the adaptor: call from the rank's own thread.
  void stage(int rank, const picmc::Simulation& sim) EXCLUDES(stage_mutex_);

  /// Write the staged states as a new epoch (write -> verify -> rename
  /// MANIFEST), retrying transient faults, then apply retention.  Returns
  /// the committed epoch number; throws IoError when kMaxCommitAttempts
  /// attempts all failed.  Holds the staging lock for the duration so a
  /// straggler stage() cannot mutate the table mid-write.
  std::uint64_t commit() EXCLUDES(stage_mutex_);

  /// Restore `sim` from the newest epoch that passes verification, falling
  /// back epoch-by-epoch.  report.recovered is false when no epoch
  /// verifies (the simulation is left untouched in that case).
  RestartReport restore(picmc::Simulation& sim);

  /// The newest committed epoch that passes CRC verification (rejected ones
  /// are counted into the stats), or nullopt when none verifies.  This is
  /// the decision half of restore(): the shrink-recovery coordinator calls
  /// it on one rank, agrees on the answer, then has every survivor call
  /// restore_epoch() on the same epoch.
  std::optional<std::uint64_t> newest_verifying_epoch();

  /// Restore `sim` (any communicator size — re-partitions when it differs
  /// from the writer's, see core::restore_repartitioned) from a specific
  /// committed epoch, resolving delta chains block by block.  Safe to call
  /// from every surviving rank concurrently (stats updates are the only
  /// writes, and they ride the commit-protocol thread like every other
  /// counter).
  void restore_epoch(std::uint64_t epoch, picmc::Simulation& sim);

  /// Record one completed shrink-recovery taking `seconds` of wall time /
  /// one observed I/O-ladder degradation into the stats.
  void record_recovery(double seconds);
  void record_degradation();
  /// Install run-wide online-recovery totals.  The recovery coordinator
  /// builds a fresh manager per shrink generation (the communicator size
  /// changed), so the final generation's manager adopts the totals
  /// accumulated across all of them before writing resilience.json.
  void set_recovery_totals(std::uint64_t recoveries,
                           std::uint64_t degradations, double t_recovery_s);

  /// Re-verify every committed epoch (own chunks CRC-scrubbed, chain
  /// references resolved and content-checked) and clean up uncommitted
  /// epoch directories left behind by a crash.  A startup/idle operation:
  /// never run it concurrently with a commit, whose epoch is uncommitted
  /// (and would read as an orphan) until the MANIFEST rename.
  ScrubReport scrub();

  /// Parse a committed epoch's MANIFEST; nullopt when absent or malformed.
  std::optional<EpochManifest> read_manifest(std::uint64_t epoch) const;

  /// Committed epoch numbers (MANIFEST present), ascending.
  std::vector<std::uint64_t> committed_epochs() const;
  std::string epoch_dir(std::uint64_t epoch) const;
  std::string resil_dir() const { return run_dir_ + "/resil"; }

  const ResilienceStats& stats() const { return stats_; }
  Json stats_json() const;
  /// Write stats_json() to <run>/resil/resilience.json (overwrites).
  void write_stats_json();

private:
  std::string series_path(std::uint64_t epoch) const;
  std::string manifest_path(std::uint64_t epoch) const;
  /// One commit attempt: write series (delta epochs skip the blocks in
  /// `refs`) + verify + rename manifest.  Returns false (after tearing the
  /// epoch down) when verification finds corrupt chunks; throws IoError on
  /// transient write failures.  Reads the staging table, so the caller must
  /// hold the staging lock.
  bool try_commit_epoch(std::uint64_t epoch, std::uint64_t step,
                        const std::string& kind,
                        const std::vector<BlockRef>& refs)
      REQUIRES(stage_mutex_);
  /// Dedup plan for the next epoch: the staged blocks whose content hash
  /// (and count) match the last committed copy — after confirming the
  /// stored base chunk still exists and carries that hash.
  std::vector<BlockRef> plan_refs(
      const std::vector<core::CheckpointBlock>& blocks);
  /// Full chain verification of one epoch: own chunks CRC-verified plus
  /// every manifest reference resolved, read back and content-checked.
  /// Any failure counts; 1 is returned for an epoch that does not open.
  std::uint64_t chain_bad_chunks(std::uint64_t epoch);
  /// Restore through the chain, timing the walk and counting the blocks
  /// it fetched into the stats and the trace ("restore_chain").
  void restore_via_chain(std::uint64_t epoch, picmc::Simulation& sim,
                         bool repartition);
  void remove_epoch_files(std::uint64_t epoch, bool manifest_first);
  void apply_retention();

  fsim::SharedFs& fs_;
  std::string run_dir_;
  core::Bit1IoConfig config_;
  int nranks_;
  std::uint64_t next_epoch_ = 1;
  // Last committed copy of every checkpoint block, keyed (variable, rank):
  // which epoch physically stores it and the content identity it had.  A
  // fresh manager starts empty, so the first commit of an incarnation is
  // always a full epoch (no cross-incarnation chain rebuilding).  Only the
  // commit protocol touches it, under the staging lock.
  std::map<std::pair<std::string, int>, BlockRef> base_map_
      GUARDED_BY(stage_mutex_);
  std::uint64_t commits_since_full_ = 0;
  // stage() is called from every rank's own thread; the staging table and
  // the lazily-fixed species layout are the shared state it guards.
  util::Mutex stage_mutex_;
  std::vector<std::string> species_names_ GUARDED_BY(stage_mutex_);
  std::vector<core::RankCheckpoint> staged_ GUARDED_BY(stage_mutex_);
  // Commit/restore/scrub counters.  Written only from the single-threaded
  // commit/restore protocol (never from per-rank stage() calls), so it
  // rides outside the staging lock by design.
  ResilienceStats stats_;
};

/// DiagnosticsSink decorator that routes checkpoints through a
/// CheckpointManager (versioned epochs) while diagnostics pass through to
/// the wrapped sink unchanged.  Lets the SPMD loop opt into resilience by
/// swapping one sink for another.
class ResilientSink final : public core::DiagnosticsSink {
public:
  ResilientSink(std::unique_ptr<core::DiagnosticsSink> inner,
                std::shared_ptr<CheckpointManager> manager);

  std::string sink_name() const override { return "resilient+" + inner_->sink_name(); }
  void stage_diagnostics(int rank, const picmc::Simulation& sim,
                         const picmc::DiagnosticSnapshot& snapshot) override;
  void flush_diagnostics(std::uint64_t step, double time) override;
  void stage_checkpoint(int rank, const picmc::Simulation& sim) override;
  void flush_checkpoint() override;
  void synchronize() override;
  void close() override;

private:
  std::unique_ptr<core::DiagnosticsSink> inner_;
  std::shared_ptr<CheckpointManager> manager_;
};

}  // namespace bitio::resil
