#pragma once
// The online-recovery coordinator: ULFM-style shrink/restart for a live
// SPMD PIC run.
//
// run_resilient_spmd() drives the full detect -> agree -> shrink ->
// restore -> resume sequence on top of smpi::run_spmd_supervised:
//
//   detect   a rank whose FaultPlan::rank_crash rule fires throws
//            RankFailure at the step boundary; the survivors' next
//            collective raises RankFailedError instead of hanging
//   agree    the supervised runner runs the fault-tolerant consensus
//   shrink   ... and builds the dense survivor communicator
//   restore  the new rank 0 picks the newest CRC-verifying checkpoint
//            epoch, broadcasts it, and every survivor restores from it —
//            re-partitioning the particle population over the smaller
//            communicator (core::restore_repartitioned); when no epoch
//            verifies the run restarts from scratch
//   resume   the simulation loop continues from the restored step with a
//            fresh diagnostics sink per generation (<run>/gen_<k>)
//
// Diagnostics go through the core::DegradingSink ladder, so backend
// failures during the run degrade service (async -> sync -> serial)
// instead of killing it; ladder step-downs, recoveries, and the wall time
// spent recovering are accumulated into resilience.json.
//
// The policy knob is Bit1IoConfig::recovery: "shrink" enables the sequence
// above, "abort" keeps the pre-PR behaviour (a rank failure ends the run
// with RankFailedError).

#include <cstdint>
#include <string>
#include <vector>

#include "core/io_config.hpp"
#include "fsim/posix_fs.hpp"
#include "picmc/simulation.hpp"
#include "resil/checkpoint_manager.hpp"

namespace bitio::resil {

struct ResilientRunConfig {
  picmc::SimConfig sim;    // the physics case (datfile/dmpstep cadence)
  core::Bit1IoConfig io;   // engine, checkpoint_interval, fault_plan,
                           // recovery policy, ladder thresholds
  std::string run_dir = "resilient_run";
  int nranks = 4;
  int max_recoveries = 8;  // shrink generations before giving up
};

struct ResilientRunReport {
  int recoveries = 0;             // shrink generations completed
  int final_size = 0;             // communicator size at the end
  std::vector<int> crashed_ranks;  // original ranks that died
  std::uint64_t final_step = 0;   // simulation step reached
  std::uint64_t last_restored_epoch = 0;  // 0 = no restore happened
  std::uint64_t restored_step = 0;  // step the last restore resumed from
  bool restarted_from_scratch = false;  // a recovery found no valid epoch
  int degradations = 0;           // I/O ladder step-downs observed
  double t_recovery_s = 0.0;      // wall seconds inside recoveries
  ResilienceStats stats;          // final generation's manager stats
};

/// Run `cfg.sim` on `cfg.nranks` simulated ranks with online failure
/// recovery.  Installs cfg.io.fault_plan into `fs` when non-empty.  The
/// run survives rank crashes (shrinking), transient and wedged I/O (the
/// drain watchdog + degradation ladder), and corrupt checkpoints (epoch
/// fallback); it throws only when recovery itself is exhausted or the
/// policy is "abort".
ResilientRunReport run_resilient_spmd(fsim::SharedFs& fs,
                                      const ResilientRunConfig& cfg);

}  // namespace bitio::resil
