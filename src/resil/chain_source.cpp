#include "resil/chain_source.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/hash64.hpp"

namespace bitio::resil {

namespace {

/// Content hashes are 64-bit; JSON numbers are doubles.  Hex strings keep
/// every bit through the manifest round trip.
std::string hash_hex(std::uint64_t hash) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::uint64_t hash_from_hex(const std::string& text) {
  try {
    return std::stoull(text, nullptr, 16);
  } catch (const std::exception&) {
    throw FormatError("MANIFEST: bad block hash '" + text + "'");
  }
}

}  // namespace

// GCC 12's -Wmaybe-uninitialized misfires on the Json variant move inside
// vector growth below (the value is fully constructed); scoped so the
// strict -Werror build stays clean without losing the warning elsewhere.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Json EpochManifest::to_json() const {
  JsonObject o;
  o["manifest_version"] = Json(std::uint64_t(kManifestVersion));
  o["epoch"] = Json(epoch);
  o["step"] = Json(step);
  o["engine"] = Json(engine);
  o["nranks"] = Json(nranks);
  o["kind"] = Json(kind);
  if (!base_epochs.empty()) {
    JsonArray bases;
    for (const std::uint64_t base : base_epochs) bases.push_back(Json(base));
    o["base_epochs"] = Json(std::move(bases));
  }
  if (!refs.empty()) {
    JsonArray array;
    for (const BlockRef& ref : refs) {
      JsonObject r;
      r["var"] = Json(ref.var);
      r["rank"] = Json(ref.rank);
      r["offset"] = Json(ref.offset);
      r["count"] = Json(ref.count);
      r["bytes"] = Json(ref.bytes);
      r["hash"] = Json(hash_hex(ref.hash));
      r["epoch"] = Json(ref.epoch);
      array.push_back(Json(std::move(r)));
    }
    o["refs"] = Json(std::move(array));
  }
  return Json(std::move(o));
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

EpochManifest EpochManifest::from_json(const Json& doc) {
  EpochManifest m;
  // Version-1 manifests predate the field; newer-than-us is a hard error
  // (fields this reader does not understand may be load-bearing).
  const std::uint64_t version =
      doc.get_or("manifest_version", Json(std::uint64_t(1))).as_uint();
  if (version > std::uint64_t(kManifestVersion))
    throw FormatError("MANIFEST: manifest_version " + std::to_string(version) +
                      " is newer than this reader understands");
  m.epoch = doc.at("epoch").as_uint();
  m.step = doc.at("step").as_uint();
  m.engine = doc.at("engine").as_string();
  m.nranks = int(doc.at("nranks").as_int());
  // Pre-delta manifests carry none of the chain fields: kind "full".
  m.kind = doc.get_or("kind", Json("full")).as_string();
  if (m.kind != "full" && m.kind != "delta")
    throw FormatError("MANIFEST: unknown epoch kind '" + m.kind + "'");
  if (doc.contains("base_epochs"))
    for (const Json& base : doc.at("base_epochs").as_array())
      m.base_epochs.push_back(base.as_uint());
  if (doc.contains("refs")) {
    for (const Json& entry : doc.at("refs").as_array()) {
      BlockRef ref;
      ref.var = entry.at("var").as_string();
      ref.rank = int(entry.at("rank").as_int());
      ref.offset = entry.at("offset").as_uint();
      ref.count = entry.at("count").as_uint();
      ref.bytes = entry.at("bytes").as_uint();
      ref.hash = hash_from_hex(entry.at("hash").as_string());
      ref.epoch = entry.at("epoch").as_uint();
      m.refs.push_back(std::move(ref));
    }
  }
  return m;
}

ChainCheckpointSource::ChainCheckpointSource(
    fsim::SharedFs& fs, EpochManifest manifest,
    std::function<std::string(std::uint64_t)> series_path)
    : fs_(fs),
      manifest_(std::move(manifest)),
      series_path_(std::move(series_path)) {
  // Own chunks of the target epoch: everything its container stores.
  bp::Reader& own = reader_for(manifest_.epoch);
  if (own.has_step(0)) {
    for (const auto& var : own.step(0).variables) {
      auto& homes = blocks_[var.name];
      for (const auto& chunk : var.chunks) {
        if (chunk.count.empty() || chunk.count[0] == 0) continue;
        homes.push_back(BlockHome{chunk.offset[0], chunk.count[0],
                                  manifest_.epoch, int(chunk.writer_rank), 0,
                                  false});
      }
    }
  }
  // Referenced blocks: bytes live in an earlier epoch, placed at this
  // epoch's offsets; the manifest hash pins the exact content expected.
  for (const BlockRef& ref : manifest_.refs) {
    if (ref.count == 0) continue;
    blocks_[ref.var].push_back(BlockHome{ref.offset, ref.count, ref.epoch,
                                         ref.rank, ref.hash, true});
  }
  for (auto& [var, homes] : blocks_)
    std::sort(homes.begin(), homes.end(),
              [](const BlockHome& a, const BlockHome& b) {
                return a.offset < b.offset;
              });
}

bp::Reader& ChainCheckpointSource::reader_for(std::uint64_t epoch) {
  auto it = readers_.find(epoch);
  if (it == readers_.end())
    it = readers_
             .emplace(epoch, std::make_unique<bp::Reader>(
                                 bp::Reader::open(fs_, 0, series_path_(epoch))))
             .first;
  return *it->second;
}

std::vector<std::uint8_t> ChainCheckpointSource::read_range(
    const std::string& var, std::uint64_t elem_offset, std::uint64_t count) {
  std::vector<std::uint8_t> out(count * 8, 0);
  if (count == 0) return out;
  auto it = blocks_.find(var);
  if (it == blocks_.end())
    throw UsageError("chain restore: no variable '" + var + "' in epoch " +
                     std::to_string(manifest_.epoch));
  std::uint64_t covered = 0;
  for (const BlockHome& home : it->second) {
    const std::uint64_t lo = std::max(home.offset, elem_offset);
    const std::uint64_t hi =
        std::min(home.offset + home.count, elem_offset + count);
    if (lo >= hi) continue;  // block outside the range: never read
    const std::vector<std::uint8_t> raw =
        reader_for(home.epoch)
            .read_chunk(0, var, std::uint32_t(home.rank));
    if (raw.size() != home.count * 8)
      throw FormatError("chain restore: block size mismatch on '" + var +
                        "' in epoch " + std::to_string(home.epoch));
    // A referenced block must still hold the bytes the manifest committed
    // to — a rewritten or swapped base chunk is corruption, not reuse.
    if (home.check_hash && util::hash64(raw) != home.hash)
      throw FormatError("chain restore: content hash mismatch on '" + var +
                        "' block of rank " + std::to_string(home.rank) +
                        " in epoch " + std::to_string(home.epoch));
    std::memcpy(out.data() + (lo - elem_offset) * 8,
                raw.data() + (lo - home.offset) * 8, (hi - lo) * 8);
    covered += hi - lo;
    blocks_read_ += 1;
  }
  if (covered != count)
    throw FormatError("chain restore: range [" + std::to_string(elem_offset) +
                      ", " + std::to_string(elem_offset + count) +
                      ") of '" + var + "' not fully covered by the chain");
  return out;
}

std::vector<std::uint64_t> ChainCheckpointSource::read_u64(
    const std::string& var, std::uint64_t elem_offset, std::uint64_t count) {
  const auto raw = read_range(var, elem_offset, count);
  std::vector<std::uint64_t> out(count);
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

std::vector<double> ChainCheckpointSource::read_f64(const std::string& var,
                                                    std::uint64_t elem_offset,
                                                    std::uint64_t count) {
  const auto raw = read_range(var, elem_offset, count);
  std::vector<double> out(count);
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

}  // namespace bitio::resil
