#include "openpmd/backend.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "bp/engine.hpp"
#include "bp/reader.hpp"
#include "util/error.hpp"

namespace bitio::pmd {

namespace {

// ------------------------------------------------------------ BpBackend ---

class BpWriteBackend final : public SeriesBackend {
public:
  BpWriteBackend(fsim::SharedFs& fs, const std::string& path, int nranks,
                 const Json& adios2_config, const std::string& engine)
      : name_(engine) {
    bp::EngineConfig config = adios2_config.is_null()
                                  ? bp::EngineConfig{}
                                  : bp::EngineConfig::from_json(adios2_config);
    // Engine selection goes through the string-keyed registry; the name
    // (from the file extension or Bit1IoConfig::engine) is authoritative.
    writer_ = bp::make_engine(engine, fs, path, std::move(config), nranks);
  }

  std::string name() const override { return name_; }

  void begin_iteration(std::uint64_t index) override {
    writer_->begin_step(index);
  }

  void put_chunk(int rank, const std::string& var, const Extent& shape,
                 const ChunkView& chunk) override {
    writer_->put(rank, var, shape, chunk);
  }

  void put_attribute(const std::string& name, AttrValue value) override {
    writer_->add_attribute(name, std::move(value));
  }

  void end_iteration() override { writer_->end_step(); }

  void flush(FlushMode mode) override {
    // async: submitted steps keep draining in the background.  sync: join,
    // making the container consistent for read-after-write.
    if (mode == FlushMode::sync) writer_->flush();
  }

  void close() override { writer_->close(); }

  bp::Engine* engine() override { return writer_.get(); }

  std::vector<std::uint64_t> iterations() const override {
    throw UsageError("openPMD: series is write-only");
  }
  std::vector<VarInfo> variables(std::uint64_t) const override {
    throw UsageError("openPMD: series is write-only");
  }
  std::vector<std::uint8_t> read_var(std::uint64_t,
                                     const std::string&) override {
    throw UsageError("openPMD: series is write-only");
  }
  std::optional<AttrValue> attribute(std::uint64_t,
                                     const std::string&) const override {
    throw UsageError("openPMD: series is write-only");
  }

private:
  std::string name_;
  std::unique_ptr<bp::Engine> writer_;
};

class BpReadBackend final : public SeriesBackend {
public:
  BpReadBackend(fsim::SharedFs& fs, const std::string& path,
                std::string engine)
      : name_(std::move(engine)), reader_(bp::Reader::open(fs, 0, path)) {}

  std::string name() const override { return name_; }

  void begin_iteration(std::uint64_t) override { read_only(); }
  void put_chunk(int, const std::string&, const Extent&,
                 const ChunkView&) override {
    read_only();
  }
  void put_attribute(const std::string&, AttrValue) override { read_only(); }
  void end_iteration() override { read_only(); }
  void close() override {}

  std::vector<std::uint64_t> iterations() const override {
    return reader_.steps();
  }

  std::vector<VarInfo> variables(std::uint64_t iteration) const override {
    std::vector<VarInfo> out;
    for (const auto& var : reader_.step(iteration).variables)
      out.push_back({var.name, var.dtype, var.shape});
    return out;
  }

  std::vector<std::uint8_t> read_var(std::uint64_t iteration,
                                     const std::string& var) override {
    return reader_.read(iteration, var);
  }

  std::optional<AttrValue> attribute(std::uint64_t iteration,
                                     const std::string& name) const override {
    return reader_.attribute(iteration, name);
  }

private:
  [[noreturn]] static void read_only() {
    throw UsageError("openPMD: series is read-only");
  }
  std::string name_;
  bp::Reader reader_;
};

// ---------------------------------------------------------- JsonBackend ---

// File-based encoding: `path` must contain "%T", replaced by the iteration
// index.  Each iteration is one self-contained JSON document:
//   { "iteration": N,
//     "attributes": { name: value, ... },
//     "variables": { name: {dtype, extent, data:[...]}, ... } }

std::string expand_pattern(const std::string& pattern, std::uint64_t index) {
  const auto pos = pattern.find("%T");
  if (pos == std::string::npos)
    throw UsageError("openPMD json backend: path needs a %T pattern");
  return pattern.substr(0, pos) + std::to_string(index) +
         pattern.substr(pos + 2);
}

Json attr_to_json(const AttrValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) return Json(*s);
  if (const auto* d = std::get_if<double>(&value)) return Json(*d);
  Json j{JsonObject{}};
  j["uint64"] = std::get<std::uint64_t>(value);
  return j;
}

AttrValue attr_from_json(const Json& j) {
  if (j.is_string()) return AttrValue(j.as_string());
  if (j.is_number()) return AttrValue(j.as_number());
  if (j.is_object() && j.contains("uint64"))
    return AttrValue(j.at("uint64").as_uint());
  throw FormatError("openPMD json backend: bad attribute value");
}

template <typename T>
void append_elements(Json& array, std::span<const std::uint8_t> bytes) {
  const std::size_t n = bytes.size() / sizeof(T);
  const T* p = reinterpret_cast<const T*>(bytes.data());
  for (std::size_t i = 0; i < n; ++i) array.push_back(double(p[i]));
}

template <typename T>
std::vector<std::uint8_t> elements_from(const JsonArray& array) {
  std::vector<std::uint8_t> out(array.size() * sizeof(T));
  T* p = reinterpret_cast<T*>(out.data());
  for (std::size_t i = 0; i < array.size(); ++i)
    p[i] = static_cast<T>(array[i].as_number());
  return out;
}

class JsonBackend final : public SeriesBackend {
public:
  JsonBackend(fsim::SharedFs& fs, std::string pattern, bool write)
      : fs_(fs), pattern_(std::move(pattern)), write_(write) {
    if (!write_) scan_existing();
  }

  std::string name() const override { return "json"; }

  void begin_iteration(std::uint64_t index) override {
    if (!write_) throw UsageError("openPMD: series is read-only");
    current_ = Json{JsonObject{}};
    current_["iteration"] = index;
    current_["attributes"] = Json{JsonObject{}};
    current_["variables"] = Json{JsonObject{}};
    current_index_ = index;
    open_ = true;
  }

  void put_chunk(int /*rank*/, const std::string& var, const Extent& shape,
                 const ChunkView& chunk) override {
    const Datatype dtype = chunk.dtype();
    const Offset& offset = chunk.offset();
    const Extent& count = chunk.count();
    const std::span<const std::uint8_t> data = chunk.bytes();
    if (!open_) throw UsageError("openPMD json backend: no open iteration");
    Json& vars = current_["variables"];
    if (!vars.contains(var)) {
      Json v{JsonObject{}};
      v["dtype"] = bp::dtype_name(dtype);
      Json ext{JsonArray{}};
      for (auto e : shape) ext.push_back(e);
      v["extent"] = std::move(ext);
      // Dense zero-filled element array, chunks scattered into it.
      Json zero{JsonArray{}};
      for (std::uint64_t i = 0; i < bp::element_count(shape); ++i)
        zero.push_back(0.0);
      v["data"] = std::move(zero);
      vars[var] = std::move(v);
    }
    // Scatter (JSON backend supports only 1D chunks — its role is small
    // debug output; the BP backends carry the n-dimensional load).
    if (shape.size() != 1)
      throw UsageError("openPMD json backend: only 1D variables supported");
    Json& arr = vars[var]["data"];
    Json tmp{JsonArray{}};
    switch (dtype) {
      case Datatype::uint8: append_elements<std::uint8_t>(tmp, data); break;
      case Datatype::int32: append_elements<std::int32_t>(tmp, data); break;
      case Datatype::uint64: append_elements<std::uint64_t>(tmp, data); break;
      case Datatype::float32: append_elements<float>(tmp, data); break;
      case Datatype::float64: append_elements<double>(tmp, data); break;
    }
    if (tmp.size() != count[0])
      throw UsageError("openPMD json backend: chunk size mismatch");
    for (std::size_t i = 0; i < tmp.size(); ++i)
      arr[offset[0] + i] = tmp.at(i);
  }

  void put_attribute(const std::string& name, AttrValue value) override {
    if (!open_) throw UsageError("openPMD json backend: no open iteration");
    current_["attributes"][name] = attr_to_json(value);
  }

  void end_iteration() override {
    if (!open_) throw UsageError("openPMD json backend: no open iteration");
    const std::string text = current_.dump(1);
    fsim::FsClient io(fs_, 0);
    const std::string file = expand_pattern(pattern_, current_index_);
    if (io.exists(file)) io.unlink(file);
    io.write_file(file, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(
                                text.data()),
                            text.size()));
    known_.insert_or_assign(current_index_, file);
    open_ = false;
  }

  void close() override {
    if (open_) throw UsageError("openPMD json backend: iteration left open");
  }

  std::vector<std::uint64_t> iterations() const override {
    std::vector<std::uint64_t> out;
    for (const auto& [index, file] : known_) {
      (void)file;
      out.push_back(index);
    }
    return out;
  }

  std::vector<VarInfo> variables(std::uint64_t iteration) const override {
    const Json doc = load(iteration);
    std::vector<VarInfo> out;
    for (const auto& [name, v] : doc.at("variables").as_object()) {
      VarInfo info;
      info.name = name;
      info.dtype = dtype_from_name(v.at("dtype").as_string());
      for (const auto& e : v.at("extent").as_array())
        info.extent.push_back(e.as_uint());
      out.push_back(std::move(info));
    }
    return out;
  }

  std::vector<std::uint8_t> read_var(std::uint64_t iteration,
                                     const std::string& var) override {
    const Json doc = load(iteration);
    if (!doc.at("variables").contains(var))
      throw UsageError("openPMD json backend: no variable '" + var + "'");
    const Json& v = doc.at("variables").at(var);
    const auto& arr = v.at("data").as_array();
    switch (dtype_from_name(v.at("dtype").as_string())) {
      case Datatype::uint8: return elements_from<std::uint8_t>(arr);
      case Datatype::int32: return elements_from<std::int32_t>(arr);
      case Datatype::uint64: return elements_from<std::uint64_t>(arr);
      case Datatype::float32: return elements_from<float>(arr);
      case Datatype::float64: return elements_from<double>(arr);
    }
    throw FormatError("openPMD json backend: bad dtype");
  }

  std::optional<AttrValue> attribute(std::uint64_t iteration,
                                     const std::string& name) const override {
    const Json doc = load(iteration);
    if (!doc.at("attributes").contains(name)) return std::nullopt;
    return attr_from_json(doc.at("attributes").at(name));
  }

private:
  static Datatype dtype_from_name(const std::string& name) {
    for (auto t : {Datatype::uint8, Datatype::int32, Datatype::uint64,
                   Datatype::float32, Datatype::float64})
      if (name == bp::dtype_name(t)) return t;
    throw FormatError("openPMD json backend: unknown dtype '" + name + "'");
  }

  Json load(std::uint64_t iteration) const {
    auto it = known_.find(iteration);
    if (it == known_.end())
      throw UsageError("openPMD: no iteration " + std::to_string(iteration));
    fsim::FsClient io(fs_, 0);
    const auto bytes = io.read_all(it->second);
    return Json::parse(std::string(
        reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  }

  void scan_existing() {
    // Find files matching the pattern's prefix/suffix in its directory.
    const auto pos = pattern_.find("%T");
    if (pos == std::string::npos)
      throw UsageError("openPMD json backend: path needs a %T pattern");
    const std::string prefix = pattern_.substr(0, pos);
    const std::string suffix = pattern_.substr(pos + 2);
    const std::string dir = fsim::parent_path(pattern_);
    for (const auto* file : fs_.store().list_recursive(dir)) {
      const std::string& p = file->path;
      if (p.size() <= prefix.size() + suffix.size()) continue;
      if (p.compare(0, prefix.size(), prefix) != 0) continue;
      if (p.compare(p.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      const std::string middle =
          p.substr(prefix.size(), p.size() - prefix.size() - suffix.size());
      if (middle.empty() ||
          middle.find_first_not_of("0123456789") != std::string::npos)
        continue;
      known_[std::stoull(middle)] = p;
    }
  }

  fsim::SharedFs& fs_;
  std::string pattern_;
  bool write_;
  bool open_ = false;
  Json current_;
  std::uint64_t current_index_ = 0;
  std::map<std::uint64_t, std::string> known_;
};

std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos)
    throw UsageError("openPMD: path '" + path +
                     "' has no extension to select a backend");
  return path.substr(dot + 1);
}

}  // namespace

std::unique_ptr<SeriesBackend> make_write_backend(fsim::SharedFs& fs,
                                                  const std::string& path,
                                                  int nranks,
                                                  const Json& adios2_config) {
  const std::string ext = extension_of(path);
  if (ext == "bp" || ext == "bp4")
    return std::make_unique<BpWriteBackend>(fs, path, nranks, adios2_config,
                                            "bp4");
  if (ext == "bp5")
    return std::make_unique<BpWriteBackend>(fs, path, nranks, adios2_config,
                                            "bp5");
  if (ext == "stream")
    return std::make_unique<BpWriteBackend>(fs, path, nranks, adios2_config,
                                            "stream");
  if (ext == "json")
    return std::make_unique<JsonBackend>(fs, path, /*write=*/true);
  throw UsageError("openPMD: no backend for extension '." + ext + "'");
}

std::unique_ptr<SeriesBackend> make_read_backend(fsim::SharedFs& fs,
                                                 const std::string& path) {
  const std::string ext = extension_of(path);
  if (ext == "bp" || ext == "bp4")
    return std::make_unique<BpReadBackend>(fs, path, "bp4");
  if (ext == "bp5")
    return std::make_unique<BpReadBackend>(fs, path, "bp5");
  if (ext == "json")
    return std::make_unique<JsonBackend>(fs, path, /*write=*/false);
  throw UsageError("openPMD: no backend for extension '." + ext + "'");
}

}  // namespace bitio::pmd
