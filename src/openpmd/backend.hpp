#pragma once
// Backend abstraction of the miniPMD layer.
//
// openPMD-api's design point (and the reason the paper adopts it) is that
// the application writes against one hierarchy of iterations / meshes /
// particle species, and the storage backend — ADIOS2 BP4/BP5, JSON, HDF5 —
// is chosen by file extension and tuned by a runtime config.  This header
// defines the narrow interface both of our backends implement:
//   * BpBackend   (.bp/.bp4/.bp5): group-based iteration encoding with
//     steps in a single miniBP container — the paper's configuration.
//   * JsonBackend (.json): file-based encoding, one JSON document per
//     iteration (the "%T" pattern), human-readable.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bp/types.hpp"
#include "fsim/posix_fs.hpp"
#include "util/json.hpp"

namespace bitio::bp {
class Engine;  // src/bp/engine.hpp
}

namespace bitio::pmd {

using bp::AttrValue;
using bp::ChunkView;
using bp::Datatype;
using Extent = bp::Dims;
using Offset = bp::Dims;

/// Flush semantics for an asynchronous staged engine: `sync` joins every
/// outstanding drain before returning (read-after-write safe), `async`
/// leaves submitted steps draining in the background.  Engines without an
/// async path treat both as a no-op (their writes already landed).
enum class FlushMode { sync, async };

/// Metadata of one stored variable, backend-independent.
struct VarInfo {
  std::string name;
  Datatype dtype = Datatype::uint8;
  Extent extent;
};

class SeriesBackend {
public:
  virtual ~SeriesBackend() = default;

  virtual std::string name() const = 0;  // "bp4", "bp5", "json"

  // -- write path ----------------------------------------------------------
  virtual void begin_iteration(std::uint64_t index) = 0;
  virtual void put_chunk(int rank, const std::string& var,
                         const Extent& shape, const ChunkView& chunk) = 0;
  virtual void put_attribute(const std::string& name, AttrValue value) = 0;
  virtual void end_iteration() = 0;
  /// Join or kick the engine's outstanding work; no-op by default.
  virtual void flush(FlushMode) {}
  virtual void close() = 0;

  // -- read path -----------------------------------------------------------
  virtual std::vector<std::uint64_t> iterations() const = 0;
  virtual std::vector<VarInfo> variables(std::uint64_t iteration) const = 0;
  virtual std::vector<std::uint8_t> read_var(std::uint64_t iteration,
                                             const std::string& var) = 0;
  virtual std::optional<AttrValue> attribute(std::uint64_t iteration,
                                             const std::string& name) const = 0;

  /// The underlying bp::Engine when this backend writes through one
  /// (BP4/BP5/stream); nullptr otherwise (JSON).  In-situ consumers use
  /// this to Engine::attach() to a live series.
  virtual bp::Engine* engine() { return nullptr; }
};

/// Create the backend for `path` based on its extension.  `nranks` sizes
/// the writing communicator; `adios2_config` carries the parsed "adios2"
/// section of the series config (ignored by the JSON backend).
std::unique_ptr<SeriesBackend> make_write_backend(fsim::SharedFs& fs,
                                                  const std::string& path,
                                                  int nranks,
                                                  const Json& adios2_config);
std::unique_ptr<SeriesBackend> make_read_backend(fsim::SharedFs& fs,
                                                 const std::string& path);

}  // namespace bitio::pmd
