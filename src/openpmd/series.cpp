#include "openpmd/series.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace bitio::pmd {

namespace {

std::vector<std::string> split_on(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

std::string join_extent(const Extent& extent) {
  std::string out;
  for (std::size_t i = 0; i < extent.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(extent[i]);
  }
  return out;
}

Extent parse_extent(const std::string& text) {
  Extent extent;
  for (const auto& part : split_on(text, ','))
    if (!part.empty()) extent.push_back(std::stoull(part));
  return extent;
}

}  // namespace

// -------------------------------------------------------- RecordComponent ---

void RecordComponent::reset_dataset(Datatype dtype, Extent extent) {
  series_->require_write();
  if (constant_)
    throw UsageError("openPMD: component is constant, cannot reset dataset");
  dtype_ = dtype;
  extent_ = std::move(extent);
  dataset_set_ = true;
}

void RecordComponent::store_chunk(int rank, const ChunkView& chunk) {
  series_->require_write();
  if (!dataset_set_)
    throw UsageError("openPMD: store_chunk before reset_dataset on '" +
                     var_path_ + "'");
  if (chunk.dtype() != dtype_)
    throw UsageError("openPMD: datatype mismatch on '" + var_path_ + "'");
  // Empty chunks are legal and skipped ("if the local vector is not empty,
  // it is stored to disk").
  if (bp::element_count(chunk.count()) == 0) return;
  series_->backend_->put_chunk(rank, var_path_, extent_, chunk);
}

void RecordComponent::make_constant(double value, Extent extent) {
  series_->require_write();
  if (dataset_set_)
    throw UsageError("openPMD: component already has a dataset");
  constant_ = true;
  constant_value_ = value;
  extent_ = std::move(extent);
  dtype_ = Datatype::float64;
}

void RecordComponent::set_unit_si(double unit) { unit_si_ = unit; }

Datatype RecordComponent::dtype() const { return dtype_; }
const Extent& RecordComponent::extent() const { return extent_; }
bool RecordComponent::is_constant() const { return constant_; }

double RecordComponent::constant_value() const {
  if (!constant_)
    throw UsageError("openPMD: '" + var_path_ + "' is not constant");
  return constant_value_;
}

double RecordComponent::unit_si() const { return unit_si_; }

std::vector<std::uint8_t> RecordComponent::load_bytes(
    Datatype expected) const {
  if (constant_) {
    const std::uint64_t n = bp::element_count(extent_);
    std::vector<std::uint8_t> out(n * bp::dtype_size(expected));
    for (std::uint64_t i = 0; i < n; ++i) {
      switch (expected) {
        case Datatype::float32: {
          const float v = float(constant_value_);
          std::memcpy(out.data() + i * 4, &v, 4);
          break;
        }
        case Datatype::float64: {
          std::memcpy(out.data() + i * 8, &constant_value_, 8);
          break;
        }
        case Datatype::uint64: {
          const std::uint64_t v = std::uint64_t(constant_value_);
          std::memcpy(out.data() + i * 8, &v, 8);
          break;
        }
        default:
          throw UsageError("openPMD: unsupported constant datatype");
      }
    }
    return out;
  }
  if (expected != dtype_)
    throw UsageError("openPMD: datatype mismatch loading '" + var_path_ +
                     "'");
  return series_->backend_->read_var(iteration_, var_path_);
}

// ------------------------------------------------------------------ Record ---

RecordComponent& Record::operator[](const std::string& component) {
  auto it = components_.find(component);
  if (it == components_.end()) {
    if (series_->access() == Access::read_only)
      throw UsageError("openPMD: no component '" + component + "' in '" +
                       base_path_ + "'");
    auto comp = std::make_unique<RecordComponent>();
    comp->series_ = series_;
    comp->iteration_ = iteration_;
    comp->var_path_ = base_path_ + "/" + component;
    it = components_.emplace(component, std::move(comp)).first;
  }
  return *it->second;
}

std::vector<std::string> Record::component_names() const {
  std::vector<std::string> names;
  for (const auto& [name, comp] : components_) {
    (void)comp;
    names.push_back(name);
  }
  return names;
}

bool Record::has_component(const std::string& name) const {
  return components_.count(name) > 0;
}

// --------------------------------------------------------- ParticleSpecies ---

Record& ParticleSpecies::operator[](const std::string& record) {
  auto it = records_.find(record);
  if (it == records_.end()) {
    if (series_->access() == Access::read_only)
      throw UsageError("openPMD: no record '" + record + "' in '" +
                       base_path_ + "'");
    auto rec = std::make_unique<Record>();
    rec->series_ = series_;
    rec->iteration_ = iteration_;
    rec->base_path_ = base_path_ + "/" + record;
    it = records_.emplace(record, std::move(rec)).first;
  }
  return *it->second;
}

std::vector<std::string> ParticleSpecies::record_names() const {
  std::vector<std::string> names;
  for (const auto& [name, rec] : records_) {
    (void)rec;
    names.push_back(name);
  }
  return names;
}

// --------------------------------------------------------------- Iteration ---

Record& Iteration::mesh(const std::string& name) {
  auto it = meshes_.find(name);
  if (it == meshes_.end()) {
    if (!writable_)
      throw UsageError("openPMD: no mesh '" + name + "' in iteration " +
                       std::to_string(index_));
    if (closed_) throw UsageError("openPMD: iteration is closed");
    auto rec = std::make_unique<Record>();
    rec->series_ = series_;
    rec->iteration_ = index_;
    rec->base_path_ = "meshes/" + name;
    it = meshes_.emplace(name, std::move(rec)).first;
  }
  return *it->second;
}

ParticleSpecies& Iteration::particles(const std::string& name) {
  auto it = species_.find(name);
  if (it == species_.end()) {
    if (!writable_)
      throw UsageError("openPMD: no species '" + name + "' in iteration " +
                       std::to_string(index_));
    if (closed_) throw UsageError("openPMD: iteration is closed");
    auto sp = std::make_unique<ParticleSpecies>();
    sp->series_ = series_;
    sp->iteration_ = index_;
    sp->base_path_ = "particles/" + name;
    it = species_.emplace(name, std::move(sp)).first;
  }
  return *it->second;
}

std::vector<std::string> Iteration::mesh_names() const {
  std::vector<std::string> names;
  for (const auto& [name, rec] : meshes_) {
    (void)rec;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Iteration::species_names() const {
  std::vector<std::string> names;
  for (const auto& [name, sp] : species_) {
    (void)sp;
    names.push_back(name);
  }
  return names;
}

void Iteration::set_time(double time) { time_ = time; }
void Iteration::set_dt(double dt) { dt_ = dt; }
double Iteration::time() const { return time_; }
double Iteration::dt() const { return dt_; }

void Iteration::close() {
  if (closed_) return;
  if (!writable_) {
    closed_ = true;
    return;
  }
  // Emit iteration and component attributes, then end the backend step.
  SeriesBackend& backend = *series_->backend_;
  backend.put_attribute("time", AttrValue(time_));
  backend.put_attribute("dt", AttrValue(dt_));

  std::string constants;
  auto emit_component = [&](const RecordComponent& comp) {
    backend.put_attribute(comp.var_path_ + "/unitSI",
                          AttrValue(comp.unit_si_));
    if (comp.constant_) {
      backend.put_attribute(comp.var_path_ + "/value",
                            AttrValue(comp.constant_value_));
      backend.put_attribute(comp.var_path_ + "/shape",
                            AttrValue(join_extent(comp.extent_)));
      if (!constants.empty()) constants += ';';
      constants += comp.var_path_;
    }
  };
  for (const auto& [name, rec] : meshes_) {
    (void)name;
    for (const auto& [cname, comp] : rec->components_) {
      (void)cname;
      emit_component(*comp);
    }
  }
  for (const auto& [sname, sp] : species_) {
    (void)sname;
    for (const auto& [rname, rec] : sp->records_) {
      (void)rname;
      for (const auto& [cname, comp] : rec->components_) {
        (void)cname;
        emit_component(*comp);
      }
    }
  }
  if (!constants.empty())
    backend.put_attribute("__constants", AttrValue(constants));

  backend.end_iteration();
  closed_ = true;
  if (series_->open_iteration_ == this) series_->open_iteration_ = nullptr;
}

// ------------------------------------------------------------------ Series ---

Series::Series(fsim::SharedFs& fs, const std::string& path, Access access,
               int nranks, const std::string& config_toml)
    : fs_(fs), path_(path), access_(access), nranks_(nranks) {
  if (nranks <= 0) throw UsageError("openPMD: nranks must be positive");
  if (access == Access::create) {
    Json adios2;  // null
    if (!config_toml.empty()) {
      const Json config = parse_toml(config_toml);
      if (config.contains("adios2")) adios2 = config.at("adios2");
    }
    backend_ = make_write_backend(fs_, path_, nranks_, adios2);
  } else {
    backend_ = make_read_backend(fs_, path_);
  }
}

Series::~Series() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an unterminated series is detectable by
    // the reader (missing steps in md.idx).
  }
}

void Series::require_write() const {
  if (access_ != Access::create)
    throw UsageError("openPMD: series is read-only");
  if (closed_) throw UsageError("openPMD: series is closed");
}

Iteration& Series::write_iteration(std::uint64_t index) {
  require_write();
  if (open_iteration_ != nullptr)
    throw UsageError("openPMD: iteration " +
                     std::to_string(open_iteration_->index()) +
                     " is still open");
  // Re-opening an index replaces the previous object (checkpoint rewrite).
  auto iteration = std::make_unique<Iteration>();
  iteration->series_ = this;
  iteration->index_ = index;
  iteration->writable_ = true;
  backend_->begin_iteration(index);
  auto [it, fresh] = iterations_.insert_or_assign(index, std::move(iteration));
  (void)fresh;
  open_iteration_ = it->second.get();
  return *it->second;
}

Iteration& Series::read_iteration(std::uint64_t index) {
  if (access_ != Access::read_only)
    throw UsageError("openPMD: read_iteration on a write series");
  auto it = iterations_.find(index);
  if (it == iterations_.end()) {
    auto iteration = std::make_unique<Iteration>();
    iteration->series_ = this;
    iteration->index_ = index;
    iteration->writable_ = false;
    load_iteration_structure(*iteration);
    it = iterations_.emplace(index, std::move(iteration)).first;
  }
  return *it->second;
}

std::vector<std::uint64_t> Series::iterations() const {
  return backend_->iterations();
}

void Series::load_iteration_structure(Iteration& iteration) {
  const std::uint64_t index = iteration.index_;
  const auto available = backend_->iterations();
  if (std::find(available.begin(), available.end(), index) ==
      available.end())
    throw UsageError("openPMD: no iteration " + std::to_string(index));

  auto attach_component = [&](const std::string& var_path, Datatype dtype,
                              Extent extent, bool constant, double value) {
    const auto parts = split_on(var_path, '/');
    Record* record = nullptr;
    std::string component_name;
    if (parts.size() == 3 && parts[0] == "meshes") {
      auto rec = std::make_unique<Record>();
      rec->series_ = this;
      rec->iteration_ = index;
      rec->base_path_ = parts[0] + "/" + parts[1];
      auto [it, fresh] =
          iteration.meshes_.try_emplace(parts[1], std::move(rec));
      (void)fresh;
      record = it->second.get();
      component_name = parts[2];
    } else if (parts.size() == 4 && parts[0] == "particles") {
      auto sp = std::make_unique<ParticleSpecies>();
      sp->series_ = this;
      sp->iteration_ = index;
      sp->base_path_ = parts[0] + "/" + parts[1];
      auto [sit, sfresh] =
          iteration.species_.try_emplace(parts[1], std::move(sp));
      (void)sfresh;
      auto rec = std::make_unique<Record>();
      rec->series_ = this;
      rec->iteration_ = index;
      rec->base_path_ = sit->second->base_path_ + "/" + parts[2];
      auto [rit, rfresh] =
          sit->second->records_.try_emplace(parts[2], std::move(rec));
      (void)rfresh;
      record = rit->second.get();
      component_name = parts[3];
    } else {
      return;  // not an openPMD path (foreign variable), skip
    }
    auto comp = std::make_unique<RecordComponent>();
    comp->series_ = this;
    comp->iteration_ = index;
    comp->var_path_ = var_path;
    comp->dataset_set_ = !constant;
    comp->dtype_ = dtype;
    comp->extent_ = std::move(extent);
    comp->constant_ = constant;
    comp->constant_value_ = value;
    if (auto unit = backend_->attribute(index, var_path + "/unitSI"))
      comp->unit_si_ = std::get<double>(*unit);
    record->components_[component_name] = std::move(comp);
  };

  for (const auto& var : backend_->variables(index))
    attach_component(var.name, var.dtype, var.extent, false, 0.0);

  if (auto constants = backend_->attribute(index, "__constants")) {
    for (const auto& var_path :
         split_on(std::get<std::string>(*constants), ';')) {
      if (var_path.empty()) continue;
      const auto value = backend_->attribute(index, var_path + "/value");
      const auto shape = backend_->attribute(index, var_path + "/shape");
      if (!value || !shape)
        throw FormatError("openPMD: incomplete constant record '" + var_path +
                          "'");
      attach_component(var_path, Datatype::float64,
                       parse_extent(std::get<std::string>(*shape)), true,
                       std::get<double>(*value));
    }
  }

  if (auto time = backend_->attribute(index, "time"))
    iteration.time_ = std::get<double>(*time);
  if (auto dt = backend_->attribute(index, "dt"))
    iteration.dt_ = std::get<double>(*dt);
}

void Series::flush(FlushMode mode) {
  require_write();
  backend_->flush(mode);
}

void Series::close() {
  if (closed_) return;
  if (open_iteration_ != nullptr) open_iteration_->close();
  backend_->close();
  closed_ = true;
}

}  // namespace bitio::pmd
