#pragma once
// miniPMD: the openPMD-style object model.
//
// Mirrors the slice of openPMD-api that the paper's BIT1 integration uses:
//
//   Series series(fs, "out/dat_file.bp4", Access::create, nranks, config);
//   auto& it = series.write_iteration(100);
//   auto& rho = it.mesh("density");                    // scalar mesh
//   auto& comp = rho.component();                      // SCALAR component
//   comp.reset_dataset(Datatype::float64, {ncells});
//   comp.store_chunk(rank, local_values, {offset}, {local_extent});
//   it.set_time(t); it.close();                        // flush to disk
//   series.close();
//
// A "record" is a physical quantity with one or more components (scalars
// use the SCALAR component); meshes are n-dimensional arrays, particle
// species store 1D per-particle arrays.  Updates over time are iterations;
// the collection of iterations is the series (Section II-B of the paper).
//
// Group-based iteration encoding with steps: with a BP backend all
// iterations live in one container, one step per iteration; iteration 0 may
// be rewritten repeatedly (the checkpoint slot) and readers see its latest
// contents.  Series-level configuration is passed as TOML text ("TOML-based
// dynamic configuration"), whose [adios2] table configures the engine.

#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "openpmd/backend.hpp"
#include "util/toml.hpp"

namespace bitio::pmd {

enum class Access { create, read_only };

/// Canonical component name of scalar records.
inline const std::string kScalar = "SCALAR";

class Series;
class Iteration;
class Record;

/// One array-valued component of a record.
class RecordComponent {
public:
  /// Declare the global dataset (collective, before any store_chunk).
  void reset_dataset(Datatype dtype, Extent extent);

  /// Deferred chunk store for one rank.  Data is buffered by the backend;
  /// the referenced span must stay valid only for this call (we copy), but
  /// like openPMD the contents must be final — there is no re-store.
  template <typename T>
  void store_chunk(int rank, std::span<const T> data, const Offset& offset,
                   const Extent& count) {
    store_chunk(rank, ChunkView::of<T>(data, offset, count));
  }

  /// Core store: the chunk's dtype/bytes/placement arrive pre-validated in
  /// one ChunkView instead of a loose argument pack.
  void store_chunk(int rank, const ChunkView& chunk);

  /// Constant component (openPMD makeConstant): value + logical extent,
  /// no data written.
  void make_constant(double value, Extent extent);

  void set_unit_si(double unit);

  // -- read side -----------------------------------------------------------
  Datatype dtype() const;
  const Extent& extent() const;
  bool is_constant() const;
  double constant_value() const;
  double unit_si() const;

  /// Load the full global array (read mode; constants are materialized).
  template <typename T>
  std::vector<T> load() const {
    const auto bytes = load_bytes(bp::datatype_of<T>::value);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

private:
  friend class Record;
  friend class Iteration;
  friend class Series;
  std::vector<std::uint8_t> load_bytes(Datatype expected) const;

  Series* series_ = nullptr;
  std::uint64_t iteration_ = 0;
  std::string var_path_;  // e.g. "meshes/density/SCALAR"
  bool dataset_set_ = false;
  Datatype dtype_ = Datatype::float64;
  Extent extent_;
  bool constant_ = false;
  double constant_value_ = 0.0;
  double unit_si_ = 1.0;
};

/// A physical quantity: a bundle of named components ("x","y","z" or
/// SCALAR).  Meshes and particle records share this shape.
class Record {
public:
  /// Component access, created on demand in write mode.
  RecordComponent& operator[](const std::string& component);
  /// Scalar shorthand: the SCALAR component.
  RecordComponent& component() { return (*this)[kScalar]; }

  std::vector<std::string> component_names() const;
  bool has_component(const std::string& name) const;

private:
  friend class Iteration;
  friend class ParticleSpecies;
  friend class Series;
  Series* series_ = nullptr;
  std::uint64_t iteration_ = 0;
  std::string base_path_;  // "meshes/density", "particles/e/position"
  std::map<std::string, std::unique_ptr<RecordComponent>> components_;
};

/// Particle species: a bundle of records (position, momentum, weight, ...).
class ParticleSpecies {
public:
  Record& operator[](const std::string& record);
  std::vector<std::string> record_names() const;

private:
  friend class Iteration;
  friend class Series;
  Series* series_ = nullptr;
  std::uint64_t iteration_ = 0;
  std::string base_path_;  // "particles/e"
  std::map<std::string, std::unique_ptr<Record>> records_;
};

class Iteration {
public:
  /// Mesh record access (created on demand in write mode).
  Record& mesh(const std::string& name);
  ParticleSpecies& particles(const std::string& name);

  std::vector<std::string> mesh_names() const;
  std::vector<std::string> species_names() const;

  void set_time(double time);
  void set_dt(double dt);
  double time() const;
  double dt() const;

  std::uint64_t index() const { return index_; }
  bool closed() const { return closed_; }

  /// Flush all stored chunks and attributes to the backend and end the
  /// step.  After close() the iteration must not be written again ("once an
  /// iteration is closed, reopening it is not required" — checkpoints
  /// instead open iteration 0 anew via write_iteration(0)).
  void close();

private:
  friend class Series;
  Series* series_ = nullptr;
  std::uint64_t index_ = 0;
  bool closed_ = false;
  bool writable_ = false;
  double time_ = 0.0;
  double dt_ = 1.0;
  std::map<std::string, std::unique_ptr<Record>> meshes_;
  std::map<std::string, std::unique_ptr<ParticleSpecies>> species_;
};

/// Root object: all data for all iterations (openPMD "Series").
class Series {
public:
  /// Write mode: `config_toml` may carry an [adios2] table.  `nranks` is
  /// the size of the writing communicator.
  Series(fsim::SharedFs& fs, const std::string& path, Access access,
         int nranks = 1, const std::string& config_toml = {});
  ~Series();

  Series(const Series&) = delete;
  Series& operator=(const Series&) = delete;

  const std::string& path() const { return path_; }
  std::string backend_name() const { return backend_->name(); }
  Access access() const { return access_; }
  int nranks() const { return nranks_; }

  /// The bp::Engine behind a BP/stream write series (nullptr for JSON):
  /// in-situ consumers Engine::attach() through this while the series is
  /// still being written.
  bp::Engine* engine() { return backend_->engine(); }

  /// Open an iteration for writing.  Opening index 0 again after it was
  /// closed re-opens the checkpoint slot (latest rewrite wins on read).
  Iteration& write_iteration(std::uint64_t index);

  /// Read-mode access to an existing iteration.
  Iteration& read_iteration(std::uint64_t index);

  /// Iteration indices present (read mode).
  std::vector<std::uint64_t> iterations() const;

  /// Flush the staged engine (write mode).  FlushMode::sync joins every
  /// outstanding async drain, making the container consistent for
  /// read-after-write; FlushMode::async returns immediately with drains
  /// still in flight.  A no-op for engines without an async path.
  void flush(FlushMode mode = FlushMode::sync);

  /// Close the series; closes a dangling open iteration first and joins
  /// outstanding drains.
  void close();

private:
  friend class RecordComponent;
  friend class Iteration;

  void require_write() const;
  void load_iteration_structure(Iteration& iteration);

  fsim::SharedFs& fs_;
  std::string path_;
  Access access_;
  int nranks_;
  std::unique_ptr<SeriesBackend> backend_;
  std::map<std::uint64_t, std::unique_ptr<Iteration>> iterations_;
  Iteration* open_iteration_ = nullptr;
  bool closed_ = false;
};

}  // namespace bitio::pmd
