#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace bitio {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw UsageError(std::string("Json: value is not a ") + want);
}

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null like most lenient writers do.
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing characters after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& msg) {
    throw FormatError("Json parse error at offset " + std::to_string(pos_) +
                      ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view w) {
    for (char c : w) {
      if (pos_ >= text_.size() || text_[pos_] != c) fail("bad literal");
      ++pos_;
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') { ++pos_; return Json(std::move(obj)); }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') { ++pos_; return Json(std::move(arr)); }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += char(code);
            } else if (code < 0x800) {
              out += char(0xC0 | (code >> 6));
              out += char(0x80 | (code & 0x3F));
            } else {
              out += char(0xE0 | (code >> 12));
              out += char(0x80 | ((code >> 6) & 0x3F));
              out += char(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    try {
      return Json(std::stod(std::string(text_.substr(start, pos_ - start))));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

std::uint64_t Json::as_uint() const {
  double d = as_number();
  if (d < 0) type_error("unsigned number");
  return static_cast<std::uint64_t>(d);
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<JsonObject>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) type_error("array");
  return std::get<JsonArray>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) type_error("object");
  return std::get<JsonObject>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  if (!is_object()) type_error("object");
  return std::get<JsonObject>(value_)[key];
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw UsageError("Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

Json Json::get_or(const std::string& key, Json fallback) const {
  if (contains(key)) return at(key);
  return fallback;
}

Json& Json::operator[](std::size_t i) { return as_array().at(i); }

const Json& Json::at(std::size_t i) const { return as_array().at(i); }

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw UsageError("Json: size() on non-container");
}

void Json::push_back(Json v) {
  if (is_null()) value_ = JsonArray{};
  as_array().push_back(std::move(v));
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(std::size_t(indent) * std::size_t(d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    dump_number(out, as_number());
  } else if (is_string()) {
    dump_string(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) { out += "[]"; return; }
    out += '[';
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out += ',';
      first = false;
      pad(depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    pad(depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    if (obj.empty()) { out += "{}"; return; }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      pad(depth + 1);
      dump_string(out, k);
      out += indent >= 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    pad(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bitio
