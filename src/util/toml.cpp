#include "util/toml.hpp"

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bitio {

namespace {

class TomlParser {
public:
  explicit TomlParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json root{JsonObject{}};
    Json* current = &root;
    while (!at_end()) {
      skip_blank();
      if (at_end()) break;
      if (peek() == '[') {
        current = parse_table_header(root);
      } else {
        parse_key_value(*current);
      }
      skip_spaces();
      skip_comment();
      if (!at_end() && !consume_newline())
        fail("expected end of line");
    }
    return root;
  }

private:
  [[noreturn]] void fail(const std::string& msg) {
    throw FormatError("TOML parse error at line " + std::to_string(line_) +
                      ": " + msg);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_spaces() {
    while (!at_end() && (peek() == ' ' || peek() == '\t')) ++pos_;
  }

  void skip_comment() {
    if (!at_end() && peek() == '#') {
      while (!at_end() && peek() != '\n') ++pos_;
    }
  }

  bool consume_newline() {
    if (at_end()) return true;
    if (peek() == '\r') ++pos_;
    if (!at_end() && peek() == '\n') { next(); return true; }
    return false;
  }

  /// Skip whitespace, newlines, and comments between top-level items.
  void skip_blank() {
    while (!at_end()) {
      skip_spaces();
      skip_comment();
      if (at_end() || !consume_newline()) break;
    }
    skip_spaces();
  }

  std::string parse_bare_key() {
    std::string key;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == '-')) {
      key += next();
    }
    if (key.empty()) fail("expected a key");
    return key;
  }

  std::string parse_key_part() {
    skip_spaces();
    if (!at_end() && (peek() == '"' || peek() == '\'')) {
      return parse_string_value().as_string();
    }
    return parse_bare_key();
  }

  std::vector<std::string> parse_dotted_key() {
    std::vector<std::string> parts{parse_key_part()};
    skip_spaces();
    while (!at_end() && peek() == '.') {
      next();
      parts.push_back(parse_key_part());
      skip_spaces();
    }
    return parts;
  }

  Json* descend(Json& root, const std::vector<std::string>& parts,
                bool create_last_fresh) {
    Json* node = &root;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      Json& child = (*node)[parts[i]];
      if (child.is_null()) {
        child = Json{JsonObject{}};
      } else if (!child.is_object()) {
        fail("key '" + parts[i] + "' already holds a value");
      } else if (create_last_fresh && i + 1 == parts.size()) {
        // Redefining an existing [table] is a TOML error; keep it strict so
        // config typos surface early.
        fail("table '" + parts[i] + "' defined twice");
      }
      node = &child;
    }
    return node;
  }

  Json* parse_table_header(Json& root) {
    next();  // '['
    if (!at_end() && peek() == '[')
      fail("arrays of tables ([[...]]) are not supported");
    auto parts = parse_dotted_key();
    skip_spaces();
    if (at_end() || next() != ']') fail("expected ']'");
    std::string joined;
    for (const auto& p : parts) {
      joined += '.';
      joined += p;
    }
    if (!defined_tables_.insert(joined).second)
      fail("table '" + joined.substr(1) + "' defined twice");
    return descend(root, parts, /*create_last_fresh=*/false);
  }

  void parse_key_value(Json& table) {
    auto parts = parse_dotted_key();
    skip_spaces();
    if (at_end() || next() != '=') fail("expected '='");
    skip_spaces();
    Json* node = &table;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
      Json& child = (*node)[parts[i]];
      if (child.is_null()) child = Json{JsonObject{}};
      if (!child.is_object()) fail("dotted key crosses a non-table value");
      node = &child;
    }
    Json& slot = (*node)[parts.back()];
    if (!slot.is_null()) fail("duplicate key '" + parts.back() + "'");
    slot = parse_value();
  }

  Json parse_value() {
    skip_spaces();
    if (at_end()) fail("expected a value");
    char c = peek();
    if (c == '"' || c == '\'') return parse_string_value();
    if (c == '[') return parse_array();
    if (c == '{') return parse_inline_table();
    if (c == 't' || c == 'f') return parse_bool();
    return parse_number();
  }

  Json parse_string_value() {
    char quote = next();
    std::string out;
    if (quote == '\'') {
      while (!at_end() && peek() != '\'') out += next();
      if (at_end()) fail("unterminated literal string");
      next();
      return Json(std::move(out));
    }
    while (true) {
      if (at_end()) fail("unterminated string");
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        if (at_end()) fail("dangling escape");
        char e = next();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: fail("unsupported escape in string");
        }
      } else {
        out += c;
      }
    }
    return Json(std::move(out));
  }

  Json parse_bool() {
    if (text_.substr(pos_, 4) == "true") { pos_ += 4; return Json(true); }
    if (text_.substr(pos_, 5) == "false") { pos_ += 5; return Json(false); }
    fail("bad boolean literal");
  }

  Json parse_number() {
    std::string digits;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '+' || peek() == '-' || peek() == '.' ||
            peek() == '_')) {
      char c = next();
      if (c != '_') digits += c;
    }
    if (digits.empty()) fail("expected a number");
    try {
      std::size_t used = 0;
      double d = std::stod(digits, &used);
      if (used != digits.size()) fail("bad number '" + digits + "'");
      return Json(d);
    } catch (const FormatError&) {
      throw;
    } catch (const std::exception&) {
      fail("bad number '" + digits + "'");
    }
  }

  Json parse_array() {
    next();  // '['
    JsonArray arr;
    while (true) {
      skip_blank();
      if (at_end()) fail("unterminated array");
      if (peek() == ']') { next(); break; }
      arr.push_back(parse_value());
      skip_blank();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') { next(); continue; }
      if (peek() == ']') { next(); break; }
      fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  Json parse_inline_table() {
    next();  // '{'
    Json table{JsonObject{}};
    skip_spaces();
    if (!at_end() && peek() == '}') { next(); return table; }
    while (true) {
      skip_spaces();
      parse_key_value(table);
      skip_spaces();
      if (at_end()) fail("unterminated inline table");
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in inline table");
    }
    return table;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::set<std::string> defined_tables_;
};

}  // namespace

Json parse_toml(std::string_view text) { return TomlParser(text).parse(); }

}  // namespace bitio
