#pragma once
// Common exception hierarchy for the bitio library.
//
// Every module throws a subclass of bitio::Error so callers can catch the
// library's failures without also swallowing unrelated std::runtime_error.

#include <stdexcept>
#include <string>

namespace bitio {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input data (corrupt container, bad config syntax, ...).
class FormatError : public Error {
public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// A request that is valid syntax but impossible to satisfy
/// (unknown codec name, write to read-only series, offset out of range, ...).
class UsageError : public Error {
public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// File-system level failure from the simulated storage stack
/// (no such file, writing through a closed descriptor, quota, ...).
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An operation exceeded its deadline: a watchdog-cancelled stalled write,
/// a drain step abandoned after bounded retries, a recv() past its deadline.
class TimeoutError : public Error {
public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

}  // namespace bitio
