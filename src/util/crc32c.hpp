#pragma once
// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum ADIOS2/HDF5-class containers use for end-to-end integrity.  The
// miniBP v5 format stores one CRC per data chunk and per metadata block so
// torn writes and silent bit flips are *detectable* on read (the corruption
// failure mode the paper reports beyond 20k ranks).
//
// Software slice-by-one table implementation: deterministic everywhere, fast
// enough for the simulated payload sizes, no ISA dependencies.

#include <cstdint>
#include <span>

namespace bitio {

/// CRC32C of `data`, continuing from `seed` (pass the previous return value
/// to checksum a logical stream in pieces; start with 0).
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

}  // namespace bitio
