#pragma once
// Annotated mutex / condition-variable wrappers for the thread-safety
// analysis (see util/thread_annotations.hpp).
//
// std::mutex under libstdc++ carries no capability attributes, so Clang's
// analysis cannot see std::lock_guard/std::unique_lock acquiring anything.
// These thin wrappers attach the attributes while compiling to exactly the
// std types underneath; behaviour is identical on every compiler.
//
// Usage pattern the analysis checks end-to-end:
//
//   util::Mutex mutex_;
//   int state_ GUARDED_BY(mutex_);
//
//   void tick() {
//     util::MutexLock lock(mutex_);   // ACQUIRE at construction
//     ++state_;                       // ok: mutex_ held
//     while (!ready_) cv_.wait(lock); // predicate as an explicit loop so
//   }                                 // guarded reads stay in this scope
//
// Condition-variable predicates are written as explicit while-loops rather
// than wait(lock, lambda): the analysis treats a lambda body as a separate
// unannotated function, so guarded reads inside one would be flagged even
// though the lock is held.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace bitio::util {

/// std::mutex with the `capability` attribute the analysis tracks.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock over a Mutex (std::unique_lock underneath, so it can be
/// handed to CondVar waits and unlocked/relocked mid-scope).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() ACQUIRE() { lock_.lock(); }
  void unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable taking MutexLock.  Like absl::CondVar, a wait is
/// annotated as if the capability stays held throughout: the temporary
/// release inside wait() is invisible to the analysis, which is safe
/// (conservative) for callers re-checking predicates in a loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace bitio::util
