#pragma once
// ASCII table rendering for benchmark output.  Every bench binary prints the
// paper's table/figure data as an aligned text table so the reproduced
// series can be eyeballed against the published one.

#include <string>
#include <vector>

namespace bitio {

/// Column-aligned ASCII table.  First added row is the header.
class TextTable {
public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);

  /// Render with column separators and a rule under the header.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bitio
