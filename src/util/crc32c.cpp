#include "util/crc32c.hpp"

#include <array>

namespace bitio {

namespace {

// 256-entry lookup table for the reflected Castagnoli polynomial, built once
// at first use (constexpr-buildable, but a function-local static keeps the
// header free of the table).
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data)
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace bitio
