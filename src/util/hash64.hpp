#pragma once
// FNV-1a 64-bit content hash.
//
// The dedup key of the incremental-checkpoint layer: miniBP format v6
// records this hash of each chunk's *raw* (pre-operator) bytes, and
// resil::CheckpointManager compares the hashes of staged blocks against the
// last committed epoch to decide what actually changed.  FNV-1a is not
// cryptographic — it only has to make accidental collisions between two
// different particle arrays vanishingly unlikely, and it must be cheap
// enough to run over every staged block at every checkpoint.

#include <cstdint>
#include <span>

namespace bitio::util {

inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ull;

/// FNV-1a 64 over a byte span (the hash of an empty span is the offset
/// basis, so zero-length blocks still dedup).
inline std::uint64_t hash64(std::span<const std::uint8_t> data) {
  std::uint64_t h = kFnv64OffsetBasis;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kFnv64Prime;
  }
  return h;
}

/// Typed convenience: hash the in-memory representation of an array.
template <typename T>
std::uint64_t hash64_of(std::span<const T> data) {
  return hash64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size_bytes()));
}

}  // namespace bitio::util
