#pragma once
// Minimal TOML parser covering the subset used for "TOML-based dynamic
// configuration" of the I/O stack (the mechanism the paper's BIT1
// integration uses to configure openPMD/ADIOS2 at run time):
//
//   * [table] and [dotted.table] headers
//   * key = value with bare and dotted keys
//   * basic "..." strings (with escapes) and literal '...' strings
//   * integers (decimal, underscores), floats, booleans
//   * arrays and inline tables { k = v, ... }
//   * comments (#) and arbitrary whitespace
//
// The parsed document is returned as a Json object tree so downstream config
// consumers have a single value model regardless of config syntax.

#include <string_view>

#include "util/json.hpp"

namespace bitio {

/// Parse TOML text into a Json object.  Throws FormatError on bad syntax or
/// duplicate key definitions.
Json parse_toml(std::string_view text);

}  // namespace bitio
