#pragma once
// Byte-size units, human formatting, and parsing of size strings such as
// "16M" / "4MiB" (the notation used by `lfs setstripe -S` and throughout the
// paper's tables).

#include <cstdint>
#include <string>

namespace bitio {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

/// Render a byte count the way the paper's tables do: "13KiB", "1.9MiB",
/// "1.1GiB".  Values below 10 in the chosen unit keep one decimal.
std::string format_bytes(std::uint64_t bytes);

/// Render a throughput in GiB/s with two decimals, e.g. "15.80 GiB/s".
std::string format_gibps(double bytes_per_second);

/// Parse "8", "64K", "16M", "16MiB", "1.5G", "2GB" into a byte count.
/// K/M/G/T suffixes are binary (as `lfs setstripe` treats them).
/// Throws FormatError on malformed input.
std::uint64_t parse_size(const std::string& text);

/// Seconds -> "12.3 ms" / "8.9 us" / "17.87 s" style string.
std::string format_seconds(double seconds);

}  // namespace bitio
