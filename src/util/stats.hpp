#pragma once
// Streaming statistics accumulators used by the Darshan-like monitor, the
// discrete-event simulator reports, and the benchmark harness.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace bitio {

/// Welford streaming accumulator: count / mean / variance / min / max / sum.
class RunningStats {
public:
  void add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a retained sample vector.  Fine for per-run report
/// sizes (<= millions of samples); not meant for unbounded streams.
class PercentileSampler {
public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  /// q in [0,1]; nearest-rank percentile.  Returns 0 for an empty sampler.
  double percentile(double q) const;

private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Power-of-two size histogram (Darshan-style access-size buckets).
class SizeHistogram {
public:
  SizeHistogram() : buckets_(kBuckets, 0) {}

  void add(std::uint64_t bytes);
  /// Bucket i counts sizes in [2^i, 2^(i+1)); bucket 0 also counts 0.
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t total() const;

  static constexpr std::size_t kBuckets = 48;

private:
  std::vector<std::uint64_t> buckets_;
};

}  // namespace bitio
