#include "util/thread_pool.hpp"

#include <algorithm>

namespace bitio::util {

ThreadPool::ThreadPool(int workers) {
  threads_.reserve(std::size_t(std::max(0, workers)));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_lane(const std::shared_ptr<Job>& job) {
  const std::size_t n = job->n;
  for (;;) {
    const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    try {
      (*job->fn)(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!job->error) job->error = std::current_exception();
    }
    // The lane completing the last index wakes the caller.  The lock is
    // taken before notifying so the caller cannot check the predicate and
    // sleep between our increment and our notify.
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      MutexLock lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop requested and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_lane(job);
  }
}

void ThreadPool::parallel_for(std::size_t n, int width,
                              const std::function<void(std::size_t)>& fn) {
  const int lanes = std::min(width - 1, workers());
  if (n <= 1 || lanes < 1) {
    // Serial short-circuit: no job allocation, exceptions propagate as-is.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    MutexLock lock(mutex_);
    // One queue entry per helper lane; a worker popping an entry becomes
    // one lane of this job.  Surplus entries (more lanes than indices)
    // drain instantly against the exhausted counter.
    for (int i = 0; i < lanes; ++i) queue_.push_back(job);
  }
  if (lanes == 1)
    work_cv_.notify_one();
  else
    work_cv_.notify_all();

  // The caller is always a lane: progress is guaranteed even when every
  // worker is busy with other jobs (nested/concurrent parallel_for).
  run_lane(job);

  {
    MutexLock lock(mutex_);
    while (job->done.load(std::memory_order_acquire) < n)
      done_cv_.wait(lock);
    if (job->error) std::rethrow_exception(job->error);
  }
}

ThreadPool& ThreadPool::shared() {
  // Leaked on purpose: codec pipelines may run during static destruction
  // (e.g. from a writer closed by an atexit-ordered destructor), so the
  // shared pool must outlive every user.
  static ThreadPool* pool = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return new ThreadPool(hc > 1 ? int(hc) - 1 : 0);
  }();
  return *pool;
}

}  // namespace bitio::util
