#pragma once
// Tiny leveled logger.  Off-by-default below `warn` so library code can emit
// diagnostics without polluting test and benchmark output.

#include <string>

namespace bitio {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (with level prefix) to stderr if enabled.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::debug, m); }
inline void log_info(const std::string& m) { log(LogLevel::info, m); }
inline void log_warn(const std::string& m) { log(LogLevel::warn, m); }
inline void log_error(const std::string& m) { log(LogLevel::error, m); }

}  // namespace bitio
