#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bitio {

namespace {
std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[bitio %s] %s\n", level_name(level), message.c_str());
}

}  // namespace bitio
