#pragma once
// Deterministic, splittable random number generation.
//
// HPC codes need per-rank independent streams whose results do not depend on
// the number of OS threads actually used.  We use xoshiro256** seeded through
// splitmix64: cheap to split (one stream per rank / per species), high
// quality, and fully reproducible across platforms.

#include <array>
#include <cstdint>
#include <cmath>

namespace bitio {

/// splitmix64 step; used to derive seeds and to decorrelate stream ids.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seed from a base seed and a stream id (e.g. MPI rank); distinct stream
  /// ids give statistically independent sequences.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull,
               std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (0x9E3779B97F4A7C15ull * (stream + 1));
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return double((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (one value per call, no caching so the
  /// stream stays splittable / reproducible under reordering).
  double normal() {
    double u1 = 0.0;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Exponential with the given rate lambda (> 0).
  double exponential(double lambda) {
    double u = 0.0;
    do { u = uniform(); } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  /// State capture/restore for bit-exact checkpoint/restart.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[std::size_t(i)];
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace bitio
