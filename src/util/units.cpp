#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace bitio {

namespace {

std::string with_unit(double value, const char* unit) {
  char buf[64];
  if (value < 10.0 && std::floor(value) != value) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= GiB) return with_unit(double(bytes) / double(GiB), "GiB");
  if (bytes >= MiB) return with_unit(double(bytes) / double(MiB), "MiB");
  if (bytes >= KiB) return with_unit(double(bytes) / double(KiB), "KiB");
  return with_unit(double(bytes), "B");
}

std::string format_gibps(double bytes_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f GiB/s", bytes_per_second / double(GiB));
  return buf;
}

std::uint64_t parse_size(const std::string& text) {
  if (text.empty()) throw FormatError("parse_size: empty string");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw FormatError("parse_size: no number in '" + text + "'");
  }
  if (value < 0.0) throw FormatError("parse_size: negative size '" + text + "'");
  // Skip whitespace between number and unit.
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  std::uint64_t mult = 1;
  if (pos < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': mult = KiB; break;
      case 'M': mult = MiB; break;
      case 'G': mult = GiB; break;
      case 'T': mult = TiB; break;
      case 'B': mult = 1; break;
      default:
        throw FormatError("parse_size: unknown unit in '" + text + "'");
    }
    ++pos;
    // Accept trailing "iB" / "B" after a K/M/G/T prefix.
    if (pos < text.size() && (text[pos] == 'i' || text[pos] == 'I')) ++pos;
    if (pos < text.size() && (text[pos] == 'b' || text[pos] == 'B')) ++pos;
  }
  if (pos != text.size())
    throw FormatError("parse_size: trailing garbage in '" + text + "'");
  return static_cast<std::uint64_t>(value * double(mult));
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace bitio
