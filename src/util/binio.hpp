#pragma once
// Little-endian binary serialization helpers shared by the container
// formats (miniBP metadata, darshan logs, PIC checkpoints).

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace bitio {

/// Appending writer over a byte vector.
class BinWriter {
public:
  std::vector<std::uint8_t>& buffer() { return out_; }
  const std::vector<std::uint8_t>& buffer() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void f64(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, 8);
    u64(bits);
  }
  void str(const std::string& s) {
    u32(std::uint32_t(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void dims(const std::vector<std::uint64_t>& d) {
    u32(std::uint32_t(d.size()));
    for (auto v : d) u64(v);
  }

private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked reader over a byte span.  Throws FormatError past end.
class BinReader {
public:
  explicit BinReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    need(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint64_t> dims() {
    const std::uint32_t n = u32();
    std::vector<std::uint64_t> d(n);
    for (auto& v : d) v = u64();
    return d;
  }

  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw FormatError("binio: truncated input");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace bitio
