#include "util/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace bitio {

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out += "| ";
      out += cell;
      out.append(width[i] - cell.size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!header_.empty()) {
    emit(out, header_);
    for (std::size_t i = 0; i < width.size(); ++i) {
      out += "|";
      out.append(width[i] + 2, '-');
    }
    out += "|\n";
  }
  for (const auto& r : rows_) emit(out, r);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(n > 0 ? std::size_t(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace bitio
