#pragma once
// Clang thread-safety-analysis capability macros.
//
// Under `clang++ -Wthread-safety` (the `analyze` CMake preset) these expand
// to the attributes the analysis consumes, turning the locking protocol of
// the concurrency-heavy modules (bp::Writer drain lanes, the DegradingSink
// breaker, the smpi World, resil::CheckpointManager staging) into
// compile-time-checked invariants:
//
//   GUARDED_BY(mu)   this member may only be read/written with `mu` held
//   REQUIRES(mu)     callers of this function must already hold `mu`
//   EXCLUDES(mu)     callers of this function must NOT hold `mu`
//   ACQUIRE(mu)      this function takes `mu` and returns holding it
//   RELEASE(mu)      this function drops `mu`
//
// On GCC (which has no thread-safety analysis) every macro expands to
// nothing, so default builds are unaffected.  See util/mutex.hpp for the
// annotated std::mutex / std::condition_variable wrappers the annotations
// attach to — a plain std::mutex carries no capability attribute under
// libstdc++, so locking it is invisible to the analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define BITIO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BITIO_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) BITIO_THREAD_ANNOTATION(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY BITIO_THREAD_ANNOTATION(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) BITIO_THREAD_ANNOTATION(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) BITIO_THREAD_ANNOTATION(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) BITIO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) BITIO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) BITIO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  BITIO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) BITIO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  BITIO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) BITIO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  BITIO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_GENERIC
#define RELEASE_GENERIC(...) \
  BITIO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  BITIO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) BITIO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) BITIO_THREAD_ANNOTATION(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) BITIO_THREAD_ANNOTATION(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  BITIO_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif
