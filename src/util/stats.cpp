#include "util/stats.hpp"

#include <cmath>

namespace bitio {

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::uint64_t total = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(total);
  mean_ += delta * double(other.n_) / double(total);
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSampler::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * double(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

void SizeHistogram::add(std::uint64_t bytes) {
  std::size_t i = 0;
  while (i + 1 < kBuckets && (1ull << (i + 1)) <= bytes) ++i;
  ++buckets_[i];
}

std::uint64_t SizeHistogram::total() const {
  std::uint64_t sum = 0;
  for (auto b : buckets_) sum += b;
  return sum;
}

}  // namespace bitio
