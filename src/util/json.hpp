#pragma once
// Minimal JSON document model with parser and serializer.
//
// Used for three things in this repository: the miniBP engine's
// profiling.json output (Fig 8), the miniPMD JSON backend, and
// machine-readable benchmark reports.  It supports the full JSON grammar
// except for \u escapes beyond the BMP surrogate pairs (which never occur in
// our own output).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace bitio {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic, which makes tests and golden
// files stable.
using JsonObject = std::map<std::string, Json>;

/// A JSON value: null / bool / number / string / array / object.
class Json {
public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(double(i)) {}
  Json(unsigned int i) : value_(double(i)) {}
  Json(std::int64_t i) : value_(double(i)) {}
  Json(std::uint64_t i) : value_(double(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object access; creates the key (as null) on mutable access.
  Json& operator[](const std::string& key);
  /// Const object access; throws UsageError if missing.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// at(key) if present, otherwise `fallback`.
  Json get_or(const std::string& key, Json fallback) const;

  /// Array element access.
  Json& operator[](std::size_t i);
  const Json& at(std::size_t i) const;
  std::size_t size() const;

  void push_back(Json v);

  /// Serialize; indent < 0 means compact single-line output.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document.  Throws FormatError on bad input.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

private:
  void dump_to(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

}  // namespace bitio
