#pragma once
// Fixed-size worker pool for block-parallel CPU work (the cz::ParallelCodec
// compression pipeline).  Design point is Blosc's internal pool: a small
// set of long-lived workers, fork/join per call, no futures or per-task
// allocation on the steady-state path.
//
// The only primitive is parallel_for(n, width, fn): run fn(i) for every
// i in [0, n) using up to `width` lanes — (width - 1) pool workers plus the
// calling thread, which always participates (so a pool of zero workers
// degrades to a plain serial loop, and a 1-wide call never touches the
// pool).  Indices are claimed with an atomic counter, so the *schedule* is
// nondeterministic but callers that write disjoint per-index results get
// deterministic output regardless of width — the property the codec
// pipeline's "byte-identical for any thread count" guarantee rests on.
//
// Exceptions thrown by fn are captured; the first one is rethrown on the
// caller after the join (the remaining indices still run — blocks are
// independent, and a partial bail-out would complicate the drain lanes for
// no benefit).
//
// Thread safety: the pool is fully thread-safe; concurrent parallel_for
// calls from different threads interleave their jobs in the shared queue
// (bp::Writer shares one pool across all drain lanes).  Annotated for the
// Clang thread-safety analysis (the `analyze` preset).

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::util {

class ThreadPool {
 public:
  /// Spawn `workers` long-lived threads (0 is valid: every parallel_for
  /// then runs inline on the caller).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return int(threads_.size()); }

  /// Run fn(i) for every i in [0, n), on up to `width` concurrent lanes
  /// (min(width - 1, workers()) pool threads plus the caller).  Blocks
  /// until all n indices have completed.  Rethrows the first exception any
  /// index threw.  width <= 1, n <= 1, or an empty pool all short-circuit
  /// to a serial inline loop.
  void parallel_for(std::size_t n, int width,
                    const std::function<void(std::size_t)>& fn)
      EXCLUDES(mutex_);

  /// Process-wide pool shared by every codec pipeline and drain lane,
  /// sized to the hardware (hardware_concurrency - 1 workers, so a full-
  /// width parallel_for including the caller saturates the machine).
  /// Created on first use; never destroyed before exit.
  static ThreadPool& shared();

 private:
  /// One fork/join job: workers claim indices from `next` until exhausted
  /// and the last lane to finish signals the caller.
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> lanes_left{0};  // pool lanes yet to drop the job
    std::exception_ptr error;        // first failure, guarded by the pool mutex
  };

  void worker_loop() EXCLUDES(mutex_);
  /// Claim-and-run indices of `job` until none remain; records the first
  /// exception under the pool mutex.
  void run_lane(const std::shared_ptr<Job>& job) EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar work_cv_;                     // workers: a job was posted / stop
  CondVar done_cv_;                     // callers: all indices of a job done
  std::deque<std::shared_ptr<Job>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace bitio::util
