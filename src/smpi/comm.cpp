#include "smpi/comm.hpp"

#include <thread>

namespace bitio::smpi {

namespace detail {

World::World(int size) : size_(size), slots_(std::size_t(size)) {
  if (size <= 0) throw UsageError("smpi: world size must be positive");
}

void World::barrier() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == size_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }
}

void World::exchange(
    int rank, std::vector<std::byte> contribution,
    const std::function<void(const std::vector<std::vector<std::byte>>&)>&
        reader) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[std::size_t(rank)] = std::move(contribution);
  }
  barrier();  // everyone has published
  // slots_ is stable between the two barriers: the next exchange cannot
  // start publishing before all ranks pass the second barrier below.
  reader(slots_);
  barrier();  // everyone has read
}

void World::send(int from, int to, std::vector<std::byte> payload) {
  {
    std::lock_guard<std::mutex> lock(mail_mutex_);
    mail_[{from, to}].push_back(std::move(payload));
  }
  mail_cv_.notify_all();
}

std::vector<std::byte> World::recv(int from, int to) {
  std::unique_lock<std::mutex> lock(mail_mutex_);
  auto key = std::make_pair(from, to);
  mail_cv_.wait(lock, [&] {
    auto it = mail_.find(key);
    return it != mail_.end() && !it->second.empty();
  });
  auto& queue = mail_[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

}  // namespace detail

Comm Comm::self() {
  return Comm(std::make_shared<detail::World>(1), 0);
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    std::span<const std::byte> local, int root) {
  std::vector<std::vector<std::byte>> out;
  world_->exchange(rank_,
                   std::vector<std::byte>(local.begin(), local.end()),
                   [&](const std::vector<std::vector<std::byte>>& all) {
                     if (rank_ == root) out.assign(all.begin(), all.end());
                   });
  return out;
}

void Comm::send(int dest, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= size()) throw UsageError("smpi: send to bad rank");
  world_->send(rank_, dest,
               std::vector<std::byte>(payload.begin(), payload.end()));
}

std::vector<std::byte> Comm::recv(int source) {
  if (source < 0 || source >= size())
    throw UsageError("smpi: recv from bad rank");
  return world_->recv(source, rank_);
}

void run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  auto world = std::make_shared<detail::World>(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
        // A dead rank would deadlock peers waiting in collectives; there is
        // no recovery in MPI either (the job aborts).  We simply stop this
        // rank; tests that exercise error paths use size-1 worlds.
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace bitio::smpi
