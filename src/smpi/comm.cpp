#include "smpi/comm.hpp"

#include <algorithm>
#include <thread>

#include "util/table.hpp"  // strfmt

namespace bitio::smpi {

namespace detail {

World::World(int size)
    : size_(size),
      slots_(std::size_t(std::max(size, 0))),
      failed_(std::size_t(std::max(size, 0))) {
  if (size <= 0) throw UsageError("smpi: world size must be positive");
}

void World::throw_if_unusable_locked() const {
  if (revoked_.load(std::memory_order_relaxed))
    throw RankFailedError("smpi: communicator revoked");
  if (failed_count_ > 0) {
    for (int r = 0; r < size_; ++r)
      if (failed_[std::size_t(r)].load(std::memory_order_relaxed))
        throw RankFailedError(
            strfmt("smpi: rank %d failed during a collective", r));
  }
}

void World::barrier() {
  util::MutexLock lock(mutex_);
  throw_if_unusable_locked();
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == size_ - failed_count_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    while (generation_ == my_generation) cv_.wait(lock);
    if (poisoned_generation_ && *poisoned_generation_ == my_generation)
      throw RankFailedError("smpi: rank failed during a collective");
  }
}

void World::exchange(
    int rank, std::vector<std::byte> contribution,
    const std::function<void(const std::vector<std::vector<std::byte>>&)>&
        reader) {
  {
    util::MutexLock lock(mutex_);
    slots_[std::size_t(rank)] = std::move(contribution);
  }
  barrier();  // everyone has published
  {
    // The read must hold the lock: a rank thrown out of the publish barrier
    // by a failure (poisoned generation) can re-enter a *new* exchange and
    // overwrite its slot while slower survivors of this one are still
    // reading — the two barriers only serialize ranks that stay healthy.
    util::MutexLock lock(mutex_);
    reader(slots_);
  }
  barrier();  // everyone has read
}

void World::send(int from, int to, std::vector<std::byte> payload) {
  if (is_revoked()) throw RankFailedError("smpi: communicator revoked");
  if (is_failed(to))
    throw RankFailedError(strfmt("smpi: send to failed rank %d", to));
  {
    util::MutexLock lock(mail_mutex_);
    mail_[{from, to}].push_back(std::move(payload));
  }
  mail_cv_.notify_all();
}

bool World::recv_ready_locked(const std::pair<int, int>& key) const {
  auto it = mail_.find(key);
  if (it != mail_.end() && !it->second.empty()) return true;
  return is_failed(key.first) || is_revoked();
}

std::vector<std::byte> World::recv(
    int from, int to, std::optional<std::chrono::milliseconds> deadline) {
  util::MutexLock lock(mail_mutex_);
  const auto key = std::make_pair(from, to);
  bool timed_out = false;
  if (deadline) {
    const auto until = std::chrono::steady_clock::now() + *deadline;
    while (!recv_ready_locked(key)) {
      if (mail_cv_.wait_until(lock, until) == std::cv_status::timeout) {
        timed_out = !recv_ready_locked(key);
        break;
      }
    }
  } else {
    while (!recv_ready_locked(key)) mail_cv_.wait(lock);
  }
  // A message the peer sent before dying is still deliverable.
  auto it = mail_.find(key);
  if (it != mail_.end() && !it->second.empty()) {
    std::vector<std::byte> payload = std::move(it->second.front());
    it->second.pop_front();
    return payload;
  }
  if (is_failed(from))
    throw RankFailedError(strfmt("smpi: recv from failed rank %d", from));
  if (is_revoked()) throw RankFailedError("smpi: communicator revoked");
  if (timed_out)
    throw TimeoutError(
        strfmt("smpi: recv from rank %d exceeded its deadline", from));
  throw RankFailedError("smpi: recv woke without a message");  // unreachable
}

void World::mark_failed(int rank) {
  if (rank < 0 || rank >= size_)
    throw UsageError("smpi: mark_failed on bad rank");
  {
    util::MutexLock lock(mutex_);
    if (failed_[std::size_t(rank)].load(std::memory_order_relaxed)) return;
    failed_[std::size_t(rank)].store(true, std::memory_order_release);
    ++failed_count_;
    // Abort any in-progress barrier: waiters wake into the poisoned
    // generation and raise RankFailedError instead of proceeding.
    if (arrived_ > 0) {
      poisoned_generation_ = generation_;
      arrived_ = 0;
      ++generation_;
    }
    // A pending agree/shrink round that was only waiting on this rank
    // completes without it.
    complete_agree_locked();
    complete_shrink_locked();
    cv_.notify_all();
  }
  {
    // Taking the mailbox lock (even empty) orders the flag store before any
    // sleeping recv re-checks its predicate.
    util::MutexLock lock(mail_mutex_);
  }
  mail_cv_.notify_all();
}

void World::revoke() {
  {
    util::MutexLock lock(mutex_);
    if (revoked_.exchange(true, std::memory_order_acq_rel)) return;
    if (arrived_ > 0) {
      poisoned_generation_ = generation_;
      arrived_ = 0;
      ++generation_;
    }
    cv_.notify_all();
  }
  {
    util::MutexLock lock(mail_mutex_);
  }
  mail_cv_.notify_all();
}

int World::alive_count() const {
  util::MutexLock lock(mutex_);
  return size_ - failed_count_;
}

std::vector<int> World::failed_ranks() const {
  util::MutexLock lock(mutex_);
  std::vector<int> out;
  for (int r = 0; r < size_; ++r)
    if (failed_[std::size_t(r)].load(std::memory_order_relaxed))
      out.push_back(r);
  return out;
}

void World::complete_agree_locked() {
  if (agree_arrived_ > 0 && agree_arrived_ >= size_ - failed_count_) {
    agree_result_ = agree_value_;
    agree_value_ = true;
    agree_arrived_ = 0;
    ++agree_generation_;
    cv_.notify_all();
  }
}

bool World::agree(int rank, bool flag) {
  util::MutexLock lock(mutex_);
  if (failed_[std::size_t(rank)].load(std::memory_order_relaxed))
    throw UsageError("smpi: agree from a failed rank");
  const std::uint64_t my_generation = agree_generation_;
  agree_value_ = agree_value_ && flag;
  ++agree_arrived_;
  complete_agree_locked();
  while (agree_generation_ == my_generation) cv_.wait(lock);
  return agree_result_;
}

void World::complete_shrink_locked() {
  if (!shrink_arrived_.empty() &&
      int(shrink_arrived_.size()) >= size_ - failed_count_) {
    std::vector<int> survivors = shrink_arrived_;
    std::sort(survivors.begin(), survivors.end());
    shrink_world_ = std::make_shared<World>(int(survivors.size()));
    shrink_ranks_.clear();
    for (std::size_t i = 0; i < survivors.size(); ++i)
      shrink_ranks_[survivors[i]] = int(i);
    shrink_arrived_.clear();
    ++shrink_generation_;
    cv_.notify_all();
  }
}

World::ShrinkResult World::shrink(int rank) {
  util::MutexLock lock(mutex_);
  if (failed_[std::size_t(rank)].load(std::memory_order_relaxed))
    throw UsageError("smpi: shrink from a failed rank");
  const std::uint64_t my_generation = shrink_generation_;
  shrink_arrived_.push_back(rank);
  complete_shrink_locked();
  while (shrink_generation_ == my_generation) cv_.wait(lock);
  // shrink_world_/shrink_ranks_ stay valid until the *next* round
  // completes, which needs every alive rank — including this one — to call
  // shrink() again, so reading them here is race-free.
  return {shrink_world_, shrink_ranks_.at(rank)};
}

}  // namespace detail

Comm Comm::self() {
  return Comm(std::make_shared<detail::World>(1), 0);
}

std::vector<std::vector<std::byte>> Comm::gatherv_bytes(
    std::span<const std::byte> local, int root) {
  std::vector<std::vector<std::byte>> out;
  world_->exchange(rank_,
                   std::vector<std::byte>(local.begin(), local.end()),
                   [&](const std::vector<std::vector<std::byte>>& all) {
                     if (rank_ == root) out.assign(all.begin(), all.end());
                   });
  return out;
}

void Comm::send(int dest, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= size()) throw UsageError("smpi: send to bad rank");
  world_->send(rank_, dest,
               std::vector<std::byte>(payload.begin(), payload.end()));
}

std::vector<std::byte> Comm::recv(int source) {
  if (source < 0 || source >= size())
    throw UsageError("smpi: recv from bad rank");
  return world_->recv(source, rank_);
}

std::vector<std::byte> Comm::recv(int source,
                                  std::chrono::milliseconds deadline) {
  if (source < 0 || source >= size())
    throw UsageError("smpi: recv from bad rank");
  return world_->recv(source, rank_, deadline);
}

void run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  auto world = std::make_shared<detail::World>(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[std::size_t(r)] = std::current_exception();
        // Mark the rank failed so peers blocked in collectives get a typed
        // RankFailedError instead of deadlocking; the captured exception is
        // rethrown below once every rank finished.
        comm.mark_self_failed();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

SpmdReport run_spmd_supervised(
    int nranks, const std::function<void(Comm&, RecoveryContext&)>& body,
    int max_recoveries) {
  auto world = std::make_shared<detail::World>(nranks);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  util::Mutex report_mutex;
  SpmdReport report;
  report.final_size = nranks;
  threads.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      RecoveryContext ctx;
      ctx.original_rank = r;
      ctx.original_size = nranks;
      for (;;) {
        try {
          body(comm, ctx);
          util::MutexLock lock(report_mutex);
          report.recoveries = std::max(report.recoveries, ctx.generation);
          report.final_size = comm.size();
          return;
        } catch (const RankFailure&) {
          // This rank died.  Not a run error: survivors recover without it.
          comm.mark_self_failed();
          util::MutexLock lock(report_mutex);
          report.crashed_ranks.push_back(r);
          return;
        } catch (const RankFailedError&) {
          if (ctx.generation >= max_recoveries) {
            errors[std::size_t(r)] = std::current_exception();
            comm.mark_self_failed();
            return;
          }
          try {
            // ULFM recovery: everyone alive agrees to recover, then shrinks
            // to a dense survivor communicator; the body is re-entered with
            // the new comm and a context describing the failure.
            comm.agree(true);
            std::vector<int> failed = comm.failed_ranks();
            Comm next = comm.shrink();
            ctx.generation += 1;
            ctx.recovered = true;
            ctx.failed_ranks = std::move(failed);
            comm = next;
          } catch (...) {
            errors[std::size_t(r)] = std::current_exception();
            comm.mark_self_failed();
            return;
          }
        } catch (...) {
          errors[std::size_t(r)] = std::current_exception();
          comm.mark_self_failed();
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  std::sort(report.crashed_ranks.begin(), report.crashed_ranks.end());
  return report;
}

}  // namespace bitio::smpi
