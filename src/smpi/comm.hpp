#pragma once
// Simulated MPI subset ("smpi").
//
// The paper's I/O stack needs only a narrow slice of MPI: rank/size,
// barrier, reduce/allreduce, gather(v)/allgather, exscan (to compute each
// rank's offset into a global array), broadcast, and point-to-point
// send/recv (used by the aggregation step).  This module provides exactly
// that slice with MPI semantics, executing SPMD rank bodies as cooperating
// threads inside one process (`run_spmd`).
//
// Design notes (LLNL MPI tutorial model): all parallelism is explicit, data
// moves between rank-private address spaces only through these cooperative
// operations.  Rank bodies must not share mutable state other than through
// the Comm.  Collectives are implemented with a shared slot table plus a
// std::barrier, giving deterministic results independent of thread
// scheduling.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace bitio::smpi {

/// Reduction operations, mirroring MPI_Op for the types we need.
enum class Op { sum, min, max };

namespace detail {

/// Shared state for one communicator: slot table + generation barrier +
/// point-to-point mailboxes.  One instance is shared by all rank threads.
class World {
public:
  explicit World(int size);

  int size() const { return size_; }

  /// Arrive-and-wait for all ranks.  Re-usable.
  void barrier();

  /// Publish this rank's contribution, wait for everyone, call `reader`
  /// with the full slot table, then wait again so no rank can start the
  /// next collective while another is still reading.
  void exchange(
      int rank, std::vector<std::byte> contribution,
      const std::function<void(const std::vector<std::vector<std::byte>>&)>&
          reader);

  void send(int from, int to, std::vector<std::byte> payload);
  std::vector<std::byte> recv(int from, int to);

private:
  int size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::vector<std::byte>> slots_;
  // Mailboxes keyed by (from, to).  deque preserves message order per pair.
  std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> mail_;
  std::condition_variable mail_cv_;
  std::mutex mail_mutex_;
};

template <typename T>
std::vector<std::byte> to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T from_bytes(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  if (bytes.size() != sizeof(T))
    throw UsageError("smpi: collective type size mismatch");
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

template <typename T>
T apply(Op op, T a, T b) {
  switch (op) {
    case Op::sum: return a + b;
    case Op::min: return a < b ? a : b;
    case Op::max: return a > b ? a : b;
  }
  throw UsageError("smpi: unknown op");
}

}  // namespace detail

/// Per-rank communicator handle.  Cheap to copy; all copies refer to the
/// same World.
class Comm {
public:
  Comm(std::shared_ptr<detail::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  /// A size-1 communicator for serial use (examples, tests, model mode).
  static Comm self();

  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  void barrier() { world_->barrier(); }

  template <typename T>
  T allreduce(T value, Op op) {
    T acc{};
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      acc = detail::from_bytes<T>(all[0]);
      for (int r = 1; r < size(); ++r)
        acc =
            detail::apply(op, acc, detail::from_bytes<T>(all[std::size_t(r)]));
    });
    return acc;
  }

  /// MPI_Exscan: rank r receives op over ranks [0, r); rank 0 receives the
  /// identity (0 for sum — the only identity we need).
  template <typename T>
  T exscan(T value, Op op = Op::sum) {
    T acc{};
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      for (int r = 0; r < rank_; ++r) {
        T v = detail::from_bytes<T>(all[std::size_t(r)]);
        acc = r == 0 ? v : detail::apply(op, acc, v);
      }
    });
    return acc;
  }

  template <typename T>
  std::vector<T> allgather(T value) {
    std::vector<T> out;
    out.reserve(std::size_t(size()));
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      for (const auto& b : all) out.push_back(detail::from_bytes<T>(b));
    });
    return out;
  }

  /// Gather fixed-size values to `root`.  Non-root ranks get an empty vector
  /// (MPI semantics).
  template <typename T>
  std::vector<T> gather(T value, int root) {
    auto all = allgather(value);
    if (rank_ != root) return {};
    return all;
  }

  template <typename T>
  T bcast(T value, int root) {
    T out{};
    world_->exchange(rank_,
                     rank_ == root ? detail::to_bytes(value)
                                   : std::vector<std::byte>{},
                     [&](const auto& all) {
                       out = detail::from_bytes<T>(all[std::size_t(root)]);
                     });
    return out;
  }

  /// Gather variable-length byte buffers to `root`; the root receives one
  /// buffer per rank in rank order, other ranks receive an empty vector.
  std::vector<std::vector<std::byte>> gatherv_bytes(
      std::span<const std::byte> local, int root);

  /// Blocking point-to-point.  Message order between a fixed (src,dst) pair
  /// is preserved.
  void send(int dest, std::span<const std::byte> payload);
  std::vector<std::byte> recv(int source);

private:
  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Launch `nranks` copies of `body` as threads, each with its own Comm, and
/// join them.  Exceptions thrown by any rank are captured and the first one
/// (by rank) is rethrown after all ranks finished.
void run_spmd(int nranks, const std::function<void(Comm&)>& body);

}  // namespace bitio::smpi
