#pragma once
// Simulated MPI subset ("smpi").
//
// The paper's I/O stack needs only a narrow slice of MPI: rank/size,
// barrier, reduce/allreduce, gather(v)/allgather, exscan (to compute each
// rank's offset into a global array), broadcast, and point-to-point
// send/recv (used by the aggregation step).  This module provides exactly
// that slice with MPI semantics, executing SPMD rank bodies as cooperating
// threads inside one process (`run_spmd`).
//
// Design notes (LLNL MPI tutorial model): all parallelism is explicit, data
// moves between rank-private address spaces only through these cooperative
// operations.  Rank bodies must not share mutable state other than through
// the Comm.  Collectives are implemented with a shared slot table plus a
// generation barrier, giving deterministic results independent of thread
// scheduling.
//
// Failure semantics (ULFM model): a rank that dies mid-run (its body throws
// RankFailure, driven by FaultPlan::rank_crash) is *marked failed* in the
// World instead of silently deadlocking its peers.  Surviving ranks observe
// the failure as RankFailedError from any collective or point-to-point
// operation — never a hang — and can then run the ULFM recovery sequence:
// agree() (fault-tolerant consensus), shrink() (dense re-ranked survivor
// communicator), and resume.  run_spmd_supervised() packages that loop:
// it re-enters rank bodies on the shrunken communicator with a
// RecoveryContext describing what happened.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::smpi {

/// Reduction operations, mirroring MPI_Op for the types we need.
enum class Op { sum, min, max };

/// Thrown *by a rank body* to simulate that rank dying mid-run (driven by
/// FaultPlan::rank_crash).  The supervised runner catches it, marks the
/// rank failed, and lets survivors observe the death as RankFailedError.
class RankFailure : public Error {
public:
  RankFailure(int rank, const std::string& what) : Error(what), rank_(rank) {}
  int rank() const { return rank_; }

private:
  int rank_;
};

/// Raised on *surviving* ranks when a peer is marked failed (or the
/// communicator revoked) while they are inside a collective or
/// point-to-point operation — the analogue of ULFM's MPI_ERR_PROC_FAILED /
/// MPI_ERR_REVOKED.  Recover with Comm::agree() + Comm::shrink(), or let
/// run_spmd_supervised() do it.
class RankFailedError : public Error {
public:
  explicit RankFailedError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Shared state for one communicator: slot table + generation barrier +
/// point-to-point mailboxes + failure bookkeeping.  One instance is shared
/// by all rank threads.
class World {
public:
  explicit World(int size);

  int size() const { return size_; }

  /// Arrive-and-wait for all alive ranks.  Re-usable.  Raises
  /// RankFailedError once any rank is failed or the world is revoked —
  /// both for ranks arriving after the failure and for ranks already
  /// blocked when it happens (their generation is poisoned and they wake).
  void barrier();

  /// Publish this rank's contribution, wait for everyone, call `reader`
  /// with the full slot table, then wait again so no rank can start the
  /// next collective while another is still reading.
  void exchange(
      int rank, std::vector<std::byte> contribution,
      const std::function<void(const std::vector<std::vector<std::byte>>&)>&
          reader);

  void send(int from, int to, std::vector<std::byte> payload);
  /// Blocking receive.  Wakes with RankFailedError if `from` is (or
  /// becomes) failed with no queued message, and with TimeoutError when a
  /// deadline is given and expires first — never an unbounded hang against
  /// a dead peer.
  std::vector<std::byte> recv(
      int from, int to,
      std::optional<std::chrono::milliseconds> deadline = std::nullopt);

  // --- ULFM-style failure handling ---------------------------------------

  /// Mark `rank` failed: every in-progress and future collective or recv
  /// involving it raises RankFailedError on the survivors instead of
  /// deadlocking, and pending agree()/shrink() rounds that were only
  /// waiting on this rank complete without it.
  void mark_failed(int rank);
  bool is_failed(int rank) const {
    return failed_[std::size_t(rank)].load(std::memory_order_acquire);
  }
  /// Poison the communicator: every subsequent collective raises
  /// RankFailedError on every rank (MPI_Comm_revoke).
  void revoke();
  bool is_revoked() const { return revoked_.load(std::memory_order_acquire); }
  int alive_count() const;
  std::vector<int> failed_ranks() const;

  /// Fault-tolerant AND-consensus over the alive ranks (MPIX_Comm_agree).
  /// Never raises for survivors: ranks that die mid-round are dropped from
  /// the quorum, so the round always completes.
  bool agree(int rank, bool flag);

  struct ShrinkResult {
    std::shared_ptr<World> world;  // dense survivor communicator
    int rank = 0;                  // caller's rank in it
  };
  /// Build a dense, re-ranked communicator of the survivors
  /// (MPIX_Comm_shrink).  Collective over the alive ranks and, like
  /// agree(), tolerant of further deaths while the round is in progress.
  /// Survivor ranks are renumbered in ascending old-rank order.
  ShrinkResult shrink(int rank);

private:
  void throw_if_unusable_locked() const REQUIRES(mutex_);
  void complete_agree_locked() REQUIRES(mutex_);
  void complete_shrink_locked() REQUIRES(mutex_);
  /// recv wake-up predicate: a queued message for (from, to), or the peer
  /// failed / the communicator revoked (the waiter must raise, not sleep).
  bool recv_ready_locked(const std::pair<int, int>& key) const
      REQUIRES(mail_mutex_);

  int size_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  int arrived_ GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  // Collective slot table.  Written by each rank as it arrives; read by
  // every rank between the publish and read barriers of exchange(), under
  // the lock (a rank thrown out of a poisoned barrier may re-enter a new
  // exchange and publish while slower survivors are still reading).
  std::vector<std::vector<std::byte>> slots_ GUARDED_BY(mutex_);

  // Failure state.  The flags are atomic so the mailbox path (guarded by
  // mail_mutex_) can read them without taking mutex_.
  std::vector<std::atomic<bool>> failed_;
  std::atomic<bool> revoked_{false};
  int failed_count_ GUARDED_BY(mutex_) = 0;
  // Barrier generation aborted by a failure; waiters from it wake and
  // raise.  At most one generation can ever be poisoned: after the first
  // failure no new waiter passes the barrier pre-check.
  std::optional<std::uint64_t> poisoned_generation_ GUARDED_BY(mutex_);

  // agree() round state (separate generation from the barrier).
  std::uint64_t agree_generation_ GUARDED_BY(mutex_) = 0;
  int agree_arrived_ GUARDED_BY(mutex_) = 0;
  bool agree_value_ GUARDED_BY(mutex_) = true;
  bool agree_result_ GUARDED_BY(mutex_) = true;

  // shrink() round state.
  std::uint64_t shrink_generation_ GUARDED_BY(mutex_) = 0;
  std::vector<int> shrink_arrived_ GUARDED_BY(mutex_);
  std::shared_ptr<World> shrink_world_ GUARDED_BY(mutex_);
  // old rank -> new rank, last completed round
  std::map<int, int> shrink_ranks_ GUARDED_BY(mutex_);

  // Mailboxes keyed by (from, to).  deque preserves message order per pair.
  util::Mutex mail_mutex_;
  std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> mail_
      GUARDED_BY(mail_mutex_);
  util::CondVar mail_cv_;
};

template <typename T>
std::vector<std::byte> to_bytes(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T from_bytes(const std::vector<std::byte>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  if (bytes.size() != sizeof(T))
    throw UsageError("smpi: collective type size mismatch");
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

template <typename T>
T apply(Op op, T a, T b) {
  switch (op) {
    case Op::sum: return a + b;
    case Op::min: return a < b ? a : b;
    case Op::max: return a > b ? a : b;
  }
  throw UsageError("smpi: unknown op");
}

}  // namespace detail

/// Per-rank communicator handle.  Cheap to copy; all copies refer to the
/// same World.
class Comm {
public:
  Comm(std::shared_ptr<detail::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  /// A size-1 communicator for serial use (examples, tests, model mode).
  static Comm self();

  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  void barrier() { world_->barrier(); }

  template <typename T>
  T allreduce(T value, Op op) {
    T acc{};
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      acc = detail::from_bytes<T>(all[0]);
      for (int r = 1; r < size(); ++r)
        acc =
            detail::apply(op, acc, detail::from_bytes<T>(all[std::size_t(r)]));
    });
    return acc;
  }

  /// MPI_Exscan: rank r receives op over ranks [0, r); rank 0 receives the
  /// identity (0 for sum — the only identity we need).
  template <typename T>
  T exscan(T value, Op op = Op::sum) {
    T acc{};
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      for (int r = 0; r < rank_; ++r) {
        T v = detail::from_bytes<T>(all[std::size_t(r)]);
        acc = r == 0 ? v : detail::apply(op, acc, v);
      }
    });
    return acc;
  }

  template <typename T>
  std::vector<T> allgather(T value) {
    std::vector<T> out;
    out.reserve(std::size_t(size()));
    world_->exchange(rank_, detail::to_bytes(value), [&](const auto& all) {
      for (const auto& b : all) out.push_back(detail::from_bytes<T>(b));
    });
    return out;
  }

  /// Gather fixed-size values to `root`.  Non-root ranks get an empty vector
  /// (MPI semantics).
  template <typename T>
  std::vector<T> gather(T value, int root) {
    auto all = allgather(value);
    if (rank_ != root) return {};
    return all;
  }

  template <typename T>
  T bcast(T value, int root) {
    T out{};
    world_->exchange(rank_,
                     rank_ == root ? detail::to_bytes(value)
                                   : std::vector<std::byte>{},
                     [&](const auto& all) {
                       out = detail::from_bytes<T>(all[std::size_t(root)]);
                     });
    return out;
  }

  /// Gather variable-length byte buffers to `root`; the root receives one
  /// buffer per rank in rank order, other ranks receive an empty vector.
  std::vector<std::vector<std::byte>> gatherv_bytes(
      std::span<const std::byte> local, int root);

  /// Blocking point-to-point.  Message order between a fixed (src,dst) pair
  /// is preserved.  Raises RankFailedError instead of hanging when the peer
  /// is marked failed; the deadline overload raises TimeoutError if the
  /// message does not arrive in time (used by the recovery path so a
  /// confused survivor can never wedge the run).
  void send(int dest, std::span<const std::byte> payload);
  std::vector<std::byte> recv(int source);
  std::vector<std::byte> recv(int source, std::chrono::milliseconds deadline);

  // --- ULFM-style recovery ------------------------------------------------

  /// Mark this rank failed (the supervised runner calls this when the body
  /// throws RankFailure).  Survivors see RankFailedError, never a hang.
  void mark_self_failed() { world_->mark_failed(rank_); }
  bool is_failed(int rank) const { return world_->is_failed(rank); }
  std::vector<int> failed_ranks() const { return world_->failed_ranks(); }
  int alive_count() const { return world_->alive_count(); }

  /// Poison the communicator for every rank (MPI_Comm_revoke).
  void revoke() { world_->revoke(); }
  bool revoked() const { return world_->is_revoked(); }

  /// Fault-tolerant AND-consensus on `flag` across the alive ranks.
  bool agree(bool flag) { return world_->agree(rank_, flag); }

  /// Dense re-ranked communicator of the survivors.  The returned Comm is a
  /// fresh world: new barrier, new mailboxes, no failed ranks.
  Comm shrink() {
    auto result = world_->shrink(rank_);
    return Comm(std::move(result.world), result.rank);
  }

private:
  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// What a supervised rank body learns about the failure history when it is
/// (re-)entered.  `original_rank` is the rank's stable identity in the
/// world the run started with — fault plans keyed by rank keep matching the
/// same logical rank across shrinks.
struct RecoveryContext {
  int original_rank = 0;
  int original_size = 0;
  int generation = 0;      // completed shrink recoveries so far
  bool recovered = false;  // true when re-entered after a failure
  std::vector<int> failed_ranks;  // failed ranks of the previous comm
};

/// Outcome of a supervised run.
struct SpmdReport {
  int recoveries = 0;  // shrink generations the run went through
  int final_size = 0;  // communicator size when the run finished
  std::vector<int> crashed_ranks;  // original ranks that threw RankFailure
};

/// Launch `nranks` copies of `body` as threads, each with its own Comm, and
/// join them.  Exceptions thrown by any rank are captured and the first one
/// (by rank) is rethrown after all ranks finished.  A rank that throws is
/// marked failed so its peers get RankFailedError instead of deadlocking.
void run_spmd(int nranks, const std::function<void(Comm&)>& body);

/// Fault-tolerant variant: a body that throws RankFailure simply dies (not
/// an error); the survivors' next collective raises RankFailedError, upon
/// which the runner executes the ULFM sequence — agree on recovery, shrink
/// to a dense survivor communicator — and re-enters the body with
/// ctx.recovered = true.  Bodies are re-entered at most `max_recoveries`
/// times; past that the RankFailedError propagates as a run error.
SpmdReport run_spmd_supervised(
    int nranks, const std::function<void(Comm&, RecoveryContext&)>& body,
    int max_recoveries = 8);

}  // namespace bitio::smpi
