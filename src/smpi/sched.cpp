#include "smpi/sched.hpp"

#include <algorithm>
#include <thread>

#include "util/table.hpp"  // strfmt
#include "util/thread_pool.hpp"

namespace bitio::smpi::sched {

Scheduler::Scheduler(
    int nranks, const std::function<std::unique_ptr<RankProgram>(int)>& factory)
    : nranks_(nranks) {
  if (nranks <= 0) throw UsageError("sched: nranks must be positive");
  if (!factory) throw UsageError("sched: null program factory");
  util::MutexLock lock(mutex_);
  tasks_.resize(std::size_t(nranks));
  rank_task_.resize(std::size_t(nranks));
  slots_.assign(std::size_t(nranks), {});
  errors_.resize(std::size_t(nranks));
  size_ = nranks;
  active_ = nranks;
  report_.final_size = nranks;
  for (int r = 0; r < nranks; ++r) {
    Task& task = tasks_[std::size_t(r)];
    task.program = factory(r);
    if (!task.program)
      throw UsageError(strfmt("sched: factory returned null for rank %d", r));
    task.ctx.rank_ = r;
    task.ctx.size_ = nranks;
    rank_task_[std::size_t(r)] = r;
    ready_.push_back(r);
  }
}

Scheduler::~Scheduler() = default;

SchedReport Scheduler::run(int workers) {
  {
    util::MutexLock lock(mutex_);
    if (ran_) throw UsageError("sched: run() may be called only once");
    ran_ = true;
  }
  int width = workers > 0 ? workers : int(std::thread::hardware_concurrency());
  if (width < 1) width = 1;
  // The bounded pool is the whole point: `width` workers drive every rank,
  // so OS thread count stays O(width) however many ranks are simulated.
  util::ThreadPool::shared().parallel_for(std::size_t(width), width,
                                          [this](std::size_t) { worker(); });
  util::MutexLock lock(mutex_);
  if (fatal_)
    throw UsageError(strfmt(
        "sched: deadlock — %d active rank(s) parked with no runnable task "
        "and no pending timer",
        active_));
  for (auto& e : errors_)
    if (e) std::rethrow_exception(e);
  report_.final_size = size_;
  std::sort(report_.crashed_ranks.begin(), report_.crashed_ranks.end());
  return report_;
}

void Scheduler::worker() {
  util::MutexLock lock(mutex_);
  for (;;) {
    expire_timers();
    if (fatal_) {
      cv_.notify_all();
      return;
    }
    if (!ready_.empty()) {
      const int t = ready_.front();
      ready_.pop_front();
      step_task(t, lock);
      continue;
    }
    if (active_ == 0) {
      cv_.notify_all();
      return;
    }
    if (stepping_ == 0 && timers_.empty()) {
      // Every active rank is parked, no step is in flight anywhere, and no
      // deadline can wake one: the program deadlocked.  Bail out with a
      // typed error instead of hanging the pool.
      fatal_ = true;
      cv_.notify_all();
      return;
    }
    if (!timers_.empty())
      cv_.wait_until(lock, timers_.top().when);
    else
      cv_.wait(lock);
  }
}

void Scheduler::step_task(int t, util::MutexLock& lock) {
  Task& task = tasks_[std::size_t(t)];
  task.status = Status::stepping;
  ++stepping_;
  RankProgram* program = task.program.get();
  RankCtx* ctx = &task.ctx;
  // The mutex handoff is what makes the unlocked step safe: every ctx write
  // the scheduler made happened under mutex_ before the task entered
  // ready_, and this worker held mutex_ when it popped the task.
  lock.unlock();
  Action action;
  std::exception_ptr error;
  bool crashed = false;
  try {
    action = program->step(*ctx);
  } catch (const RankFailure&) {
    crashed = true;
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  --stepping_;
  if (crashed || error)
    fail_task(t, error, crashed);
  else
    apply_action(t, std::move(action));
}

void Scheduler::park(int t, Action::Kind wait) {
  Task& task = tasks_[std::size_t(t)];
  task.status = Status::parked;
  task.wait = wait;
  ++task.wait_epoch;
}

void Scheduler::make_runnable(int t) {
  Task& task = tasks_[std::size_t(t)];
  task.status = Status::runnable;
  ++task.wait_epoch;  // invalidate any timer armed for the old wait
  ready_.push_back(t);
  cv_.notify_one();
}

void Scheduler::wake_with_error(int t, std::exception_ptr error) {
  tasks_[std::size_t(t)].ctx.error_ = std::move(error);
  make_runnable(t);
}

void Scheduler::apply_action(int t, Action action) {
  Task& task = tasks_[std::size_t(t)];
  const int rank = task.ctx.rank_;
  switch (action.kind) {
    case Action::Kind::finish: {
      task.status = Status::finished;
      --active_;
      try_complete_rounds();
      cv_.notify_all();
      break;
    }
    case Action::Kind::send: {
      if (action.peer < 0 || action.peer >= size_) {
        wake_with_error(t, std::make_exception_ptr(
                               UsageError("sched: send to bad rank")));
        break;
      }
      const int peer_task = rank_task_[std::size_t(action.peer)];
      if (tasks_[std::size_t(peer_task)].status == Status::failed) {
        wake_with_error(
            t, std::make_exception_ptr(RankFailedError(
                   strfmt("sched: send to failed rank %d", action.peer))));
        break;
      }
      Task& peer = tasks_[std::size_t(peer_task)];
      if (peer.status == Status::parked && peer.wait == Action::Kind::recv &&
          peer.recv_from == rank) {
        // Direct hand-off: the receiver is already parked on this sender.
        peer.ctx.recv_payload_ = std::move(action.payload);
        make_runnable(peer_task);
      } else {
        mail_[{rank, action.peer}].push_back(std::move(action.payload));
      }
      make_runnable(t);  // send does not wait
      break;
    }
    case Action::Kind::recv: {
      if (action.peer < 0 || action.peer >= size_) {
        wake_with_error(t, std::make_exception_ptr(
                               UsageError("sched: recv from bad rank")));
        break;
      }
      auto it = mail_.find({action.peer, rank});
      if (it != mail_.end() && !it->second.empty()) {
        // A message the peer sent earlier (even before dying) is still
        // deliverable.
        task.ctx.recv_payload_ = std::move(it->second.front());
        it->second.pop_front();
        make_runnable(t);
        break;
      }
      const int peer_task = rank_task_[std::size_t(action.peer)];
      if (tasks_[std::size_t(peer_task)].status == Status::failed) {
        wake_with_error(
            t, std::make_exception_ptr(RankFailedError(
                   strfmt("sched: recv from failed rank %d", action.peer))));
        break;
      }
      park(t, Action::Kind::recv);
      task.recv_from = action.peer;
      if (action.deadline) {
        timers_.push(Timer{std::chrono::steady_clock::now() + *action.deadline,
                           t, task.wait_epoch});
        // Sleeping workers may be waiting on a later (or no) deadline.
        cv_.notify_all();
      }
      break;
    }
    case Action::Kind::barrier: {
      if (failed_since_shrink_) {
        wake_with_error(t, std::make_exception_ptr(RankFailedError(
                               "sched: rank failed during a collective")));
        break;
      }
      ++barrier_arrived_;
      park(t, Action::Kind::barrier);
      try_complete_barrier();
      break;
    }
    case Action::Kind::exchange: {
      if (failed_since_shrink_) {
        wake_with_error(t, std::make_exception_ptr(RankFailedError(
                               "sched: rank failed during a collective")));
        break;
      }
      slots_[std::size_t(rank)] = std::move(action.payload);
      ++exchange_arrived_;
      park(t, Action::Kind::exchange);
      try_complete_exchange();
      break;
    }
    case Action::Kind::agree: {
      agree_value_ = agree_value_ && action.flag;
      ++agree_arrived_;
      park(t, Action::Kind::agree);
      try_complete_agree();
      break;
    }
    case Action::Kind::shrink: {
      ++shrink_arrived_;
      park(t, Action::Kind::shrink);
      try_complete_shrink();
      break;
    }
  }
}

void Scheduler::try_complete_barrier() {
  if (barrier_arrived_ == 0 || barrier_arrived_ < active_) return;
  barrier_arrived_ = 0;
  for (int t = 0; t < int(tasks_.size()); ++t) {
    Task& task = tasks_[std::size_t(t)];
    if (task.status == Status::parked && task.wait == Action::Kind::barrier)
      make_runnable(t);
  }
}

void Scheduler::try_complete_exchange() {
  if (exchange_arrived_ == 0 || exchange_arrived_ < active_) return;
  exchange_arrived_ = 0;
  // One immutable snapshot shared by every participant — no per-rank copy.
  auto snapshot = std::make_shared<const std::vector<std::vector<std::byte>>>(
      std::move(slots_));
  slots_.assign(std::size_t(size_), {});
  for (int t = 0; t < int(tasks_.size()); ++t) {
    Task& task = tasks_[std::size_t(t)];
    if (task.status == Status::parked && task.wait == Action::Kind::exchange) {
      task.ctx.snapshot_ = snapshot;
      make_runnable(t);
    }
  }
}

void Scheduler::try_complete_agree() {
  if (agree_arrived_ == 0 || agree_arrived_ < active_) return;
  const bool result = agree_value_;
  agree_value_ = true;
  agree_arrived_ = 0;
  for (int t = 0; t < int(tasks_.size()); ++t) {
    Task& task = tasks_[std::size_t(t)];
    if (task.status == Status::parked && task.wait == Action::Kind::agree) {
      task.ctx.agreed_ = result;
      make_runnable(t);
    }
  }
}

void Scheduler::try_complete_shrink() {
  if (shrink_arrived_ == 0 || shrink_arrived_ < active_) return;
  shrink_arrived_ = 0;
  // Survivors in ascending current-rank order become ranks 0..n-1 of the
  // fresh communicator (World::shrink semantics: new mailboxes, no failed
  // ranks).
  std::vector<std::pair<int, int>> survivors;  // (old rank, task)
  for (int t = 0; t < int(tasks_.size()); ++t) {
    Task& task = tasks_[std::size_t(t)];
    if (task.status == Status::parked && task.wait == Action::Kind::shrink)
      survivors.emplace_back(task.ctx.rank_, t);
  }
  std::sort(survivors.begin(), survivors.end());
  size_ = int(survivors.size());
  rank_task_.assign(std::size_t(size_), 0);
  for (int i = 0; i < size_; ++i) {
    const int t = survivors[std::size_t(i)].second;
    rank_task_[std::size_t(i)] = t;
    tasks_[std::size_t(t)].ctx.rank_ = i;
    tasks_[std::size_t(t)].ctx.size_ = size_;
  }
  mail_.clear();
  slots_.assign(std::size_t(size_), {});
  failed_since_shrink_ = false;
  ++report_.recoveries;
  for (const auto& [old_rank, t] : survivors) {
    (void)old_rank;
    make_runnable(t);
  }
}

void Scheduler::try_complete_rounds() {
  try_complete_barrier();
  try_complete_exchange();
  try_complete_agree();
  try_complete_shrink();
}

void Scheduler::fail_task(int t, std::exception_ptr error, bool crashed) {
  Task& task = tasks_[std::size_t(t)];
  task.status = Status::failed;
  --active_;
  if (crashed)
    report_.crashed_ranks.push_back(t);  // task index == original rank
  else
    errors_[std::size_t(t)] = std::move(error);
  failed_since_shrink_ = true;
  // ULFM: poison the in-progress barrier/exchange — waiters wake with
  // RankFailedError instead of completing over a hole.
  if (barrier_arrived_ > 0 || exchange_arrived_ > 0) {
    barrier_arrived_ = 0;
    exchange_arrived_ = 0;
    slots_.assign(std::size_t(size_), {});
    for (int w = 0; w < int(tasks_.size()); ++w) {
      Task& waiter = tasks_[std::size_t(w)];
      if (waiter.status == Status::parked &&
          (waiter.wait == Action::Kind::barrier ||
           waiter.wait == Action::Kind::exchange))
        wake_with_error(w, std::make_exception_ptr(RankFailedError(
                               "sched: rank failed during a collective")));
    }
  }
  // recv waiters on the dead rank: a parked recv implies its mailbox slot
  // was empty, so nothing can ever arrive — wake with the typed error.
  const int failed_rank = task.ctx.rank_;
  for (int w = 0; w < int(tasks_.size()); ++w) {
    Task& waiter = tasks_[std::size_t(w)];
    if (waiter.status == Status::parked &&
        waiter.wait == Action::Kind::recv && waiter.recv_from == failed_rank)
      wake_with_error(w, std::make_exception_ptr(RankFailedError(strfmt(
                             "sched: recv from failed rank %d", failed_rank))));
  }
  // agree/shrink rounds that were only waiting on this rank complete
  // without it.
  try_complete_agree();
  try_complete_shrink();
  cv_.notify_all();
}

void Scheduler::expire_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    const Timer timer = timers_.top();
    timers_.pop();
    Task& task = tasks_[std::size_t(timer.task)];
    // Stale entries (the task was woken for another reason and re-parked)
    // are filtered by the wait epoch.
    if (task.status == Status::parked && task.wait == Action::Kind::recv &&
        task.wait_epoch == timer.wait_epoch)
      wake_with_error(timer.task,
                      std::make_exception_ptr(TimeoutError(strfmt(
                          "sched: recv from rank %d exceeded its deadline",
                          task.recv_from))));
  }
}

}  // namespace bitio::smpi::sched
