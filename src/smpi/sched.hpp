#pragma once
// Event-driven cooperative scheduler for simulated MPI ranks ("live mode"
// at sweep scale).
//
// run_spmd() executes rank bodies as OS threads — one thread per rank.
// That is faithful and convenient up to a few hundred ranks, but a
// 10-50K-rank topology sweep cannot spawn 50,000 threads (3+ GB of stacks
// and a scheduler meltdown).  This module runs the same SPMD shape on a
// *bounded* worker pool (util::ThreadPool): each rank is an explicit
// resumable task that, instead of blocking, *returns* the operation it
// wants to wait on (barrier / exchange / recv / agree / shrink ...) and is
// parked by the scheduler until that wait-state completes.  Workers only
// ever run runnable tasks, so OS thread count stays at the pool width no
// matter how many ranks are simulated.
//
// A rank is a RankProgram: a small state machine whose step(ctx) is called
// every time the rank is runnable and returns the next Action.  Results of
// the completed wait are delivered through the RankCtx before the next
// step:
//
//   struct Hello final : sched::RankProgram {
//     int state = 0;
//     sched::Action step(sched::RankCtx& ctx) override {
//       ctx.check();  // rethrows a failure delivered while parked
//       switch (state++) {
//         case 0: return sched::Action::exchange(my_bytes());
//         case 1: use(ctx.exchanged()); return sched::Action::barrier();
//         default: return sched::Action::finish();
//       }
//     }
//   };
//
// Semantics mirror smpi::World (the thread-per-rank implementation, which
// remains the blocking API for rank bodies written as plain functions):
//   * collectives are over the *active* ranks (not finished, not failed)
//     and deterministic: the exchange snapshot is immutable and shared;
//   * ULFM failure model: a step() that throws RankFailure kills only that
//     rank; peers parked in a barrier/exchange or in a recv against it are
//     woken with RankFailedError (delivered via ctx.check(), never a hang),
//     while agree()/shrink() rounds complete without the dead rank;
//   * recv deadlines: a parked recv whose deadline passes is woken with
//     TimeoutError;
//   * shrink re-ranks the survivors densely (ctx.rank()/size() change) and
//     clears the mailboxes, like World::shrink building a fresh world.
//
// Thread safety: all scheduler state is guarded by one mutex.  A task's
// ctx fields are written by the scheduler under the mutex *before* the
// task is made runnable and read by the program inside step() without it —
// safe because a task is stepped by exactly one worker at a time and the
// ready-queue handoff gives the happens-before edge (TSan-clean; see
// tests under the `concurrency` label).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "smpi/comm.hpp"  // RankFailure / RankFailedError
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::smpi::sched {

/// The wait request a RankProgram::step returns: what the rank would have
/// blocked on in the thread-per-rank model.
struct Action {
  enum class Kind {
    barrier,   // park until every active rank arrived
    exchange,  // publish payload, park until the full snapshot is ready
    send,      // enqueue payload for `peer`; not a wait (rank re-steps)
    recv,      // park until a message from `peer` (or deadline) arrives
    agree,     // fault-tolerant AND-consensus over the active ranks
    shrink,    // dense re-rank of the survivors; clears mailboxes
    finish,    // rank is done; it is never stepped again
  };

  Kind kind = Kind::finish;
  int peer = -1;                   // send / recv
  std::vector<std::byte> payload;  // send / exchange
  std::optional<std::chrono::milliseconds> deadline;  // recv only
  bool flag = true;                // agree

  static Action barrier() { return {Kind::barrier, -1, {}, {}, true}; }
  static Action exchange(std::vector<std::byte> payload) {
    return {Kind::exchange, -1, std::move(payload), {}, true};
  }
  static Action send(int peer, std::vector<std::byte> payload) {
    return {Kind::send, peer, std::move(payload), {}, true};
  }
  static Action recv(int peer,
                     std::optional<std::chrono::milliseconds> deadline =
                         std::nullopt) {
    return {Kind::recv, peer, {}, deadline, true};
  }
  static Action agree(bool flag) { return {Kind::agree, -1, {}, {}, flag}; }
  static Action shrink() { return {Kind::shrink, -1, {}, {}, true}; }
  static Action finish() { return {Kind::finish, -1, {}, {}, true}; }
};

class Scheduler;

/// The rank's view of the scheduler, valid only inside step().  Accessors
/// deliver the result of the wait the previous step() parked on.
class RankCtx {
 public:
  /// Current rank / communicator size (both change across shrink()).
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Rethrow the failure delivered while parked (RankFailedError,
  /// TimeoutError, or a UsageError from a malformed action).  Call first
  /// in step(); a program that wants to *recover* (ULFM) catches what
  /// check() throws and returns Action::agree/shrink.
  void check() {
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  /// Snapshot of the last completed exchange: one slot per rank of the
  /// communicator at the time of the round (empty slots for non-active
  /// ranks).  Shared and immutable — cheap to hold across steps.
  const std::vector<std::vector<std::byte>>& exchanged() const {
    if (!snapshot_)
      throw UsageError("sched: exchanged() with no completed exchange");
    return *snapshot_;
  }

  /// Payload of the last completed recv (moved out).
  std::vector<std::byte> take_recv() { return std::move(recv_payload_); }

  /// Result of the last completed agree round.
  bool agreed() const { return agreed_; }

 private:
  friend class Scheduler;
  int rank_ = 0;
  int size_ = 0;
  std::exception_ptr error_;
  std::shared_ptr<const std::vector<std::vector<std::byte>>> snapshot_;
  std::vector<std::byte> recv_payload_;
  bool agreed_ = true;
};

/// A resumable rank task.  step() is called whenever the rank is runnable;
/// it must not block — long waits are expressed by returning the Action.
class RankProgram {
 public:
  virtual ~RankProgram() = default;
  virtual Action step(RankCtx& ctx) = 0;
};

/// Outcome of a scheduled run (mirrors smpi::SpmdReport).
struct SchedReport {
  int final_size = 0;              // communicator size at the end
  int recoveries = 0;              // completed shrink rounds
  std::vector<int> crashed_ranks;  // original ranks that threw RankFailure
};

/// Runs `nranks` RankPrograms to completion on a bounded worker pool.
class Scheduler {
 public:
  /// `factory(rank)` builds the program for each original rank.
  Scheduler(int nranks,
            const std::function<std::unique_ptr<RankProgram>(int)>& factory);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Drive every rank to finish (or failure).  `workers` bounds the OS
  /// thread count (0 = the shared pool's natural width); ranks beyond the
  /// width simply wait their turn as parked/queued tasks.  Rethrows the
  /// first captured task error (RankFailure is a rank death, not an
  /// error).  Throws UsageError on a wait-state deadlock instead of
  /// hanging.
  SchedReport run(int workers = 0) EXCLUDES(mutex_);

 private:
  enum class Status : std::uint8_t { runnable, stepping, parked, finished,
                                     failed };

  struct Task {
    std::unique_ptr<RankProgram> program;
    RankCtx ctx;
    Status status = Status::runnable;
    Action::Kind wait = Action::Kind::finish;  // meaningful when parked
    std::uint64_t wait_epoch = 0;  // guards stale timer wakeups
    int recv_from = -1;            // current-rank id of the awaited sender
  };

  struct Timer {
    std::chrono::steady_clock::time_point when;
    int task = 0;
    std::uint64_t wait_epoch = 0;
    bool operator>(const Timer& other) const { return when > other.when; }
  };

  void worker() EXCLUDES(mutex_);
  /// Step `t` outside the lock and apply the returned action.
  void step_task(int t, util::MutexLock& lock) REQUIRES(mutex_);
  void apply_action(int t, Action action) REQUIRES(mutex_);
  void park(int t, Action::Kind wait) REQUIRES(mutex_);
  void make_runnable(int t) REQUIRES(mutex_);
  /// Deliver `error` to a parked task and make it runnable.
  void wake_with_error(int t, std::exception_ptr error) REQUIRES(mutex_);
  void fail_task(int t, std::exception_ptr error, bool crashed)
      REQUIRES(mutex_);
  /// Round-completion checks (collectives complete when every *active*
  /// rank arrived; failures and finishes shrink that target).
  void try_complete_barrier() REQUIRES(mutex_);
  void try_complete_exchange() REQUIRES(mutex_);
  void try_complete_agree() REQUIRES(mutex_);
  void try_complete_shrink() REQUIRES(mutex_);
  void try_complete_rounds() REQUIRES(mutex_);
  void expire_timers() REQUIRES(mutex_);

  const int nranks_;
  mutable util::Mutex mutex_;
  util::CondVar cv_;  // workers wait here for runnable tasks / timers

  std::vector<Task> tasks_ GUARDED_BY(mutex_);
  std::deque<int> ready_ GUARDED_BY(mutex_);
  int active_ GUARDED_BY(mutex_) = 0;    // not finished, not failed
  int stepping_ GUARDED_BY(mutex_) = 0;  // tasks currently inside step()
  bool ran_ GUARDED_BY(mutex_) = false;
  bool fatal_ GUARDED_BY(mutex_) = false;  // deadlock: workers bail out

  // Current communicator: size and the task behind each current rank.
  // Shrink renumbers survivors densely and clears the mailboxes.
  int size_ GUARDED_BY(mutex_) = 0;
  std::vector<int> rank_task_ GUARDED_BY(mutex_);  // current rank -> task
  // A rank failed since the last shrink: barrier/exchange raise
  // RankFailedError (ULFM) until the survivors shrink.
  bool failed_since_shrink_ GUARDED_BY(mutex_) = false;

  // Collective round state (one round of each kind at a time, like World).
  int barrier_arrived_ GUARDED_BY(mutex_) = 0;
  int exchange_arrived_ GUARDED_BY(mutex_) = 0;
  std::vector<std::vector<std::byte>> slots_ GUARDED_BY(mutex_);
  int agree_arrived_ GUARDED_BY(mutex_) = 0;
  bool agree_value_ GUARDED_BY(mutex_) = true;
  int shrink_arrived_ GUARDED_BY(mutex_) = 0;

  // Mailboxes keyed by (from, to) in *current* ranks, order-preserving.
  std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> mail_
      GUARDED_BY(mutex_);
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_
      GUARDED_BY(mutex_);

  // Report / error capture.
  std::vector<std::exception_ptr> errors_ GUARDED_BY(mutex_);
  SchedReport report_ GUARDED_BY(mutex_);
};

}  // namespace bitio::smpi::sched
