#pragma once
// IOR-like synthetic I/O benchmark (Section IV-A, Table I, Fig 4).
//
// Reproduces the slice of IOR the paper runs: write tests over the POSIX or
// MPIIO api, in file-per-process (-F) or shared-file mode, with -C task
// reordering and -e fsync-on-close, at configurable block/transfer sizes.
// The benchmark generates its I/O through the simulated file system and is
// scored by the same queueing replay as the application, so its numbers are
// a true upper bound for BIT1 under the same storage model — exactly the
// role IOR plays in Fig 4.

#include <string>

#include "fsim/posix_fs.hpp"
#include "fsim/storage_model.hpp"

namespace bitio::ior {

struct IorConfig {
  int ntasks = 1;               // -N
  std::string api = "POSIX";    // -a POSIX | MPIIO
  bool file_per_proc = false;   // -F
  bool reorder_tasks = false;   // -C (readback verification order)
  bool fsync_on_close = false;  // -e
  std::uint64_t block_size = 16 * (1 << 20);  // -b, bytes per task
  std::uint64_t transfer_size = 1 << 20;      // -t
  int segments = 1;             // -s
  std::string test_dir = "ior_out";

  /// Parse an IOR command tail, e.g. "-N 25600 -a POSIX -F -C -e".
  /// Accepts both "-N 16" and "-N=16" forms (the paper prints the latter).
  static IorConfig parse_cli(const std::string& args);

  /// Render back as a Table-I style command line.
  std::string command_line() const;
};

struct IorResult {
  double write_gibps = 0.0;
  double makespan_s = 0.0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_created = 0;
};

/// Run the write phase against a fresh simulated file system with the given
/// system profile.  `synthetic` skips data materialization (for very large
/// task counts).
IorResult run_write(const fsim::SystemProfile& profile,
                    const IorConfig& config, bool synthetic = true);

}  // namespace bitio::ior
