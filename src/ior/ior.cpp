#include "ior/ior.hpp"

#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::ior {

IorConfig IorConfig::parse_cli(const std::string& args) {
  IorConfig config;
  std::istringstream in(args);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    // Split "-N=25600" into "-N", "25600".
    const auto eq = token.find('=');
    if (token.size() > 1 && token[0] == '-' && eq != std::string::npos) {
      tokens.push_back(token.substr(0, eq));
      tokens.push_back(token.substr(eq + 1));
    } else {
      tokens.push_back(token);
    }
  }
  auto value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= tokens.size())
      throw UsageError("ior: option " + tokens[i] + " needs a value");
    return tokens[++i];
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t == "ior") continue;  // allow pasting the full command
    if (t == "-N") config.ntasks = std::stoi(value(i));
    else if (t == "-a") config.api = value(i);
    else if (t == "-F") config.file_per_proc = true;
    else if (t == "-C") config.reorder_tasks = true;
    else if (t == "-e") config.fsync_on_close = true;
    else if (t == "-b") config.block_size = parse_size(value(i));
    else if (t == "-t") config.transfer_size = parse_size(value(i));
    else if (t == "-s") config.segments = std::stoi(value(i));
    else if (t == "-o") config.test_dir = value(i);
    else throw UsageError("ior: unknown option '" + t + "'");
  }
  if (config.api != "POSIX" && config.api != "MPIIO")
    throw UsageError("ior: unsupported api '" + config.api + "'");
  if (config.ntasks <= 0 || config.transfer_size == 0 ||
      config.block_size == 0 || config.segments <= 0)
    throw UsageError("ior: sizes and counts must be positive");
  return config;
}

std::string IorConfig::command_line() const {
  std::string out = "ior -N=" + std::to_string(ntasks) + " -a " + api;
  if (file_per_proc) out += " -F";
  if (reorder_tasks) out += " -C";
  if (fsync_on_close) out += " -e";
  return out;
}

IorResult run_write(const fsim::SystemProfile& profile,
                    const IorConfig& config, bool synthetic) {
  fsim::SharedFs fs(profile.ost_count, /*store_data=*/!synthetic,
                    profile.default_stripe);

  const std::uint64_t per_task =
      config.block_size * std::uint64_t(config.segments);
  const std::uint32_t transfers_per_block = std::uint32_t(
      (config.block_size + config.transfer_size - 1) / config.transfer_size);

  std::vector<std::uint8_t> buffer;
  if (!synthetic) buffer.assign(config.transfer_size, 0xA5);

  // MPIIO with collective buffering: one writer (aggregator) per node
  // funnels its node's data as large sequential transfers into the shared
  // file.  POSIX: every task issues its own transfers.
  const bool collective = config.api == "MPIIO" && !config.file_per_proc;

  int shared_fd = -1;
  if (!config.file_per_proc) {
    fsim::FsClient root(fs, 0);
    shared_fd = root.open(config.test_dir + "/testFile",
                          fsim::OpenMode::create);
  }

  for (int task = 0; task < config.ntasks; ++task) {
    if (collective && task % profile.ranks_per_node != 0) continue;
    fsim::FsClient client(fs, fsim::ClientId(task));
    const std::uint64_t tasks_here =
        collective ? std::uint64_t(std::min<int>(profile.ranks_per_node,
                                                 config.ntasks - task))
                   : 1;
    if (config.file_per_proc) {
      const int fd = client.open(
          config.test_dir + "/testFile." + std::to_string(task),
          fsim::OpenMode::create);
      for (int seg = 0; seg < config.segments; ++seg) {
        if (synthetic) {
          client.write_simulated(fd, config.block_size, transfers_per_block);
        } else {
          for (std::uint32_t tx = 0; tx < transfers_per_block; ++tx)
            client.write(fd, buffer);
        }
      }
      if (config.fsync_on_close) client.fsync(fd);
      client.close(fd);
    } else {
      // Shared file: task strides by segments (IOR's segmented layout:
      // segment s, task t writes at (s * ntasks + t) * block_size).
      const int fd = client.open(config.test_dir + "/testFile",
                                 fsim::OpenMode::write);
      for (int seg = 0; seg < config.segments; ++seg) {
        const std::uint64_t base =
            (std::uint64_t(seg) * std::uint64_t(config.ntasks) +
             std::uint64_t(task)) *
            config.block_size;
        const std::uint64_t bytes = config.block_size * tasks_here;
        if (synthetic) {
          client.seek(fd, base);
          client.write_simulated(fd, bytes,
                                 transfers_per_block *
                                     std::uint32_t(tasks_here));
        } else {
          for (std::uint64_t off = 0; off < bytes;
               off += config.transfer_size)
            client.pwrite(fd, base + off, buffer);
        }
      }
      if (config.fsync_on_close) client.fsync(fd);
      client.close(fd);
    }
  }
  if (!config.file_per_proc) {
    fsim::FsClient root(fs, 0);
    root.close(shared_fd);
  }

  const auto report =
      fsim::replay_trace(profile, fs.store(), fs.trace(), config.ntasks);
  IorResult result;
  result.makespan_s = report.makespan;
  result.bytes_written = report.bytes_written;
  result.write_gibps = report.write_throughput_bps() / double(GiB);
  result.files_created = fs.store().all_files().size();
  (void)per_task;
  return result;
}

}  // namespace bitio::ior
