#include "core/io_config.hpp"

#include "util/error.hpp"
#include "util/table.hpp"
#include "util/toml.hpp"
#include "util/units.hpp"

namespace bitio::core {

Bit1IoConfig Bit1IoConfig::from_toml(const std::string& text) {
  Bit1IoConfig config;
  const Json doc = parse_toml(text);
  if (!doc.contains("io")) return config;
  const Json& io = doc.at("io");

  const std::string mode =
      io.get_or("mode", Json("openpmd")).as_string();
  if (mode == "original") config.mode = IoMode::original;
  else if (mode == "openpmd") config.mode = IoMode::openpmd;
  else throw UsageError("io config: unknown mode '" + mode + "'");

  config.engine = io.get_or("engine", Json("bp4")).as_string();
  if (config.engine != "bp4" && config.engine != "bp5")
    throw UsageError("io config: unknown engine '" + config.engine + "'");
  config.num_aggregators = int(io.get_or("aggregators", Json(0)).as_int());
  config.checkpoint_aggregators =
      int(io.get_or("checkpoint_aggregators", Json(1)).as_int());
  config.codec = io.get_or("codec", Json("none")).as_string();
  if (config.codec != "none" && config.codec != "blosc" &&
      config.codec != "bzip2")
    throw UsageError("io config: unknown codec '" + config.codec + "'");
  config.profiling = io.get_or("profiling", Json(false)).as_bool();
  config.ranks_per_node =
      int(io.get_or("ranks_per_node", Json(128)).as_int());

  if (io.contains("striping")) {
    const Json& striping = io.at("striping");
    config.use_striping = true;
    config.striping.stripe_count =
        int(striping.get_or("count", Json(1)).as_int());
    const Json size = striping.get_or("size", Json("1M"));
    config.striping.stripe_size = size.is_string()
                                      ? parse_size(size.as_string())
                                      : size.as_uint();
  }
  return config;
}

std::string Bit1IoConfig::adios2_toml() const {
  std::string out;
  out += "[adios2.engine]\n";
  out += "type = \"" + engine + "\"\n";
  out += "[adios2.engine.parameters]\n";
  if (num_aggregators > 0)
    out += strfmt("NumAggregators = %d\n", num_aggregators);
  out += std::string("Profile = \"") + (profiling ? "On" : "Off") + "\"\n";
  if (codec != "none" && !codec.empty()) {
    out += "[adios2.dataset]\n";
    out += "operators = [ { type = \"" + codec + "\" } ]\n";
  }
  return out;
}

std::string Bit1IoConfig::label() const {
  if (mode == IoMode::original) return "BIT1 Original I/O";
  std::string out = "BIT1 openPMD + ";
  out += engine == "bp4" ? "BP4" : "BP5";
  if (codec == "blosc") out += " + Blosc";
  if (codec == "bzip2") out += " + bzip2";
  if (num_aggregators == 1) out += " + 1 AGGR";
  else if (num_aggregators > 1)
    out += " + " + std::to_string(num_aggregators) + " AGGR";
  if (use_striping)
    out += strfmt(" [stripe -c %d -S %s]", striping.stripe_count,
                  format_bytes(striping.stripe_size).c_str());
  return out;
}

}  // namespace bitio::core
