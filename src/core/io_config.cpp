#include "core/io_config.hpp"

#include "compress/buffer_pool.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/toml.hpp"
#include "util/units.hpp"

namespace bitio::core {

void Bit1IoConfig::validate() const {
  bool engine_known = false;
  std::string engine_names;
  for (const char* name : kBit1IoEngines) {
    if (engine == name) engine_known = true;
    if (!engine_names.empty()) engine_names += ", ";
    engine_names += std::string("\"") + name + "\"";
  }
  if (!engine_known)
    throw UsageError("io config: unknown engine '" + engine +
                     "' (expected one of " + engine_names + ")");
  if (codec != "none" && codec != "blosc" && codec != "bzip2")
    throw UsageError("io config: unknown codec '" + codec + "'");
  if (compress_threads < 1)
    throw UsageError("io config: compress_threads must be >= 1, got " +
                     std::to_string(compress_threads));
  if (std::size_t(compress_threads) > cz::BufferPool::kDefaultMaxPerClass)
    throw UsageError(
        "io config: compress_threads = " + std::to_string(compress_threads) +
        " exceeds the buffer-pool per-class depth (" +
        std::to_string(cz::BufferPool::kDefaultMaxPerClass) +
        "); threads beyond the pool depth thrash the freelists instead of "
        "recycling — lower compress_threads");
  if (stream_max_steps < 1)
    throw UsageError("io config: stream_max_steps must be >= 1, got " +
                     std::to_string(stream_max_steps));
  if (stream_policy != "block" && stream_policy != "drop_oldest" &&
      stream_policy != "disconnect")
    throw UsageError(
        "io config: stream_policy must be \"block\", \"drop_oldest\", or "
        "\"disconnect\", got '" + stream_policy + "'");
  if (engine == "stream") {
    // The stream engine has no file container: knobs that only make sense
    // for on-disk output are a configuration error, not a silent no-op.
    if (checkpoint_interval > 0)
      throw UsageError(
          "io config: engine \"stream\" cannot take checkpoints "
          "(checkpoint_interval = " + std::to_string(checkpoint_interval) +
          ") — checkpoint epochs need a file container; use engine \"bp4\" "
          "or \"bp5\", or set checkpoint_interval = 0");
    if (use_striping)
      throw UsageError(
          "io config: engine \"stream\" writes no files, so [io.striping] "
          "has nothing to stripe — remove the striping table or pick a "
          "file engine");
    if (async_write)
      throw UsageError(
          "io config: engine \"stream\" publishes at end_step; there is no "
          "subfile drain for async_write to move off the critical path — "
          "drop async_write or pick engine \"bp5\"");
  }
  if (compress_block_kb < 1)
    throw UsageError("io config: compress_block_kb must be >= 1, got " +
                     std::to_string(compress_block_kb));
  if (num_aggregators < 0)
    throw UsageError("io config: aggregators must be >= 0, got " +
                     std::to_string(num_aggregators));
  if (checkpoint_aggregators < 1)
    throw UsageError("io config: checkpoint_aggregators must be >= 1, got " +
                     std::to_string(checkpoint_aggregators));
  if (buffer_chunk_mb < 1)
    throw UsageError("io config: buffer_chunk_mb must be >= 1, got " +
                     std::to_string(buffer_chunk_mb));
  if (io_batch_depth < 0)
    throw UsageError("io config: io_batch_depth must be >= 0, got " +
                     std::to_string(io_batch_depth));
  if (ranks_per_node < 1)
    throw UsageError("io config: ranks_per_node must be >= 1, got " +
                     std::to_string(ranks_per_node));
  if (checkpoint_interval < 0)
    throw UsageError("io config: checkpoint_interval must be >= 0, got " +
                     std::to_string(checkpoint_interval));
  if (checkpoint_retain < 1)
    throw UsageError("io config: checkpoint_retain must be >= 1, got " +
                     std::to_string(checkpoint_retain));
  if (checkpoint_full_interval < 1)
    throw UsageError("io config: checkpoint_full_interval must be >= 1, got " +
                     std::to_string(checkpoint_full_interval));
  if (drain_timeout_ms < 0)
    throw UsageError("io config: drain_timeout_ms must be >= 0, got " +
                     std::to_string(drain_timeout_ms));
  if (max_drain_retries < 0)
    throw UsageError("io config: max_drain_retries must be >= 0, got " +
                     std::to_string(max_drain_retries));
  if (degrade_threshold < 1)
    throw UsageError("io config: degrade_threshold must be >= 1, got " +
                     std::to_string(degrade_threshold));
  if (degrade_cooldown < 1)
    throw UsageError("io config: degrade_cooldown must be >= 1, got " +
                     std::to_string(degrade_cooldown));
  if (recovery != "abort" && recovery != "shrink")
    throw UsageError("io config: recovery must be \"abort\" or \"shrink\", "
                     "got '" + recovery + "'");
  bool aggregation_known = false;
  std::string aggregation_names;
  for (const char* name : kBit1IoAggregationModes) {
    if (aggregation == name) aggregation_known = true;
    if (!aggregation_names.empty()) aggregation_names += ", ";
    aggregation_names += std::string("\"") + name + "\"";
  }
  if (!aggregation_known)
    throw UsageError("io config: unknown aggregation '" + aggregation +
                     "' (expected one of " + aggregation_names + ")");
  bool topology_known = false;
  std::string topology_names;
  for (const char* name : kBit1IoTopologies) {
    if (topology == name) topology_known = true;
    if (!topology_names.empty()) topology_names += ", ";
    topology_names += std::string("\"") + name + "\"";
  }
  if (!topology_known)
    throw UsageError("io config: unknown topology '" + topology +
                     "' (expected one of " + topology_names + ")");
  if (numa_per_node < 0)
    throw UsageError("io config: numa_per_node must be >= 0, got " +
                     std::to_string(numa_per_node));
  if (nics_per_node < 0)
    throw UsageError("io config: nics_per_node must be >= 0, got " +
                     std::to_string(nics_per_node));
  if (engine == "stream" && aggregation == "two_level" && topology == "flat")
    throw UsageError(
        "io config: aggregation \"two_level\" with engine \"stream\" needs "
        "a multi-node topology, and topology \"flat\" places every rank on "
        "one node — pick a hierarchical topology (e.g. \"dardel\") or one "
        "of the aggregation modes " + aggregation_names);
  fault_plan.validate();
  if (use_striping) {
    if (striping.stripe_count < 1)
      throw UsageError("io config: stripe count must be >= 1, got " +
                       std::to_string(striping.stripe_count));
    const std::uint64_t size = striping.stripe_size;
    if (size == 0 || (size & (size - 1)) != 0)
      throw UsageError("io config: stripe size must be a power of two, got " +
                       std::to_string(size));
  }
}

Bit1IoConfig Bit1IoConfig::from_toml(const std::string& text) {
  Bit1IoConfig config;
  const Json doc = parse_toml(text);
  if (!doc.contains("io")) return config;
  const Json& io = doc.at("io");

  const std::string mode =
      io.get_or("mode", Json("openpmd")).as_string();
  if (mode == "original") config.mode = IoMode::original;
  else if (mode == "openpmd") config.mode = IoMode::openpmd;
  else throw UsageError("io config: unknown mode '" + mode + "'");

  config.engine = io.get_or("engine", Json("bp4")).as_string();
  config.num_aggregators = int(io.get_or("aggregators", Json(0)).as_int());
  config.checkpoint_aggregators =
      int(io.get_or("checkpoint_aggregators", Json(1)).as_int());
  config.codec = io.get_or("codec", Json("none")).as_string();
  config.compress_threads =
      int(io.get_or("compress_threads", Json(1)).as_int());
  config.compress_block_kb =
      int(io.get_or("compress_block_kb", Json(1024)).as_int());
  config.profiling = io.get_or("profiling", Json(false)).as_bool();
  config.async_write = io.get_or("async_write", Json(false)).as_bool();
  config.buffer_chunk_mb =
      int(io.get_or("buffer_chunk_mb", Json(16)).as_int());
  config.io_batch_depth =
      int(io.get_or("io_batch_depth", Json(0)).as_int());
  config.coalesce_writes =
      io.get_or("coalesce_writes", Json(false)).as_bool();
  config.ranks_per_node =
      int(io.get_or("ranks_per_node", Json(128)).as_int());
  config.checkpoint_interval =
      int(io.get_or("checkpoint_interval", Json(0)).as_int());
  config.checkpoint_retain =
      int(io.get_or("checkpoint_retain", Json(2)).as_int());
  config.checkpoint_full_interval =
      int(io.get_or("checkpoint_full_interval", Json(1)).as_int());
  config.drain_timeout_ms =
      int(io.get_or("drain_timeout_ms", Json(0)).as_int());
  config.max_drain_retries =
      int(io.get_or("max_drain_retries", Json(2)).as_int());
  config.degrade_threshold =
      int(io.get_or("degrade_threshold", Json(3)).as_int());
  config.degrade_cooldown =
      int(io.get_or("degrade_cooldown", Json(8)).as_int());
  config.recovery = io.get_or("recovery", Json("abort")).as_string();
  config.stream_max_steps =
      int(io.get_or("stream_max_steps", Json(4)).as_int());
  config.stream_policy =
      io.get_or("stream_policy", Json("block")).as_string();
  config.aggregation = io.get_or("aggregation", Json("flat")).as_string();
  config.topology = io.get_or("topology", Json("flat")).as_string();
  config.numa_per_node = int(io.get_or("numa_per_node", Json(0)).as_int());
  config.nics_per_node = int(io.get_or("nics_per_node", Json(0)).as_int());
  if (io.contains("fault_plan"))
    config.fault_plan = fsim::FaultPlan::from_json(io.at("fault_plan"));

  if (io.contains("striping")) {
    const Json& striping = io.at("striping");
    config.use_striping = true;
    config.striping.stripe_count =
        int(striping.get_or("count", Json(1)).as_int());
    const Json size = striping.get_or("size", Json("1M"));
    config.striping.stripe_size = size.is_string()
                                      ? parse_size(size.as_string())
                                      : size.as_uint();
  }
  config.validate();
  return config;
}

std::string Bit1IoConfig::to_toml() const {
  std::string out;
  out += "[io]\n";
  out += std::string("mode = \"") +
         (mode == IoMode::original ? "original" : "openpmd") + "\"\n";
  out += "engine = \"" + engine + "\"\n";
  out += strfmt("aggregators = %d\n", num_aggregators);
  out += strfmt("checkpoint_aggregators = %d\n", checkpoint_aggregators);
  out += "codec = \"" + codec + "\"\n";
  out += strfmt("compress_threads = %d\n", compress_threads);
  out += strfmt("compress_block_kb = %d\n", compress_block_kb);
  out += std::string("profiling = ") + (profiling ? "true" : "false") + "\n";
  out += std::string("async_write = ") + (async_write ? "true" : "false") +
         "\n";
  out += strfmt("buffer_chunk_mb = %d\n", buffer_chunk_mb);
  out += strfmt("io_batch_depth = %d\n", io_batch_depth);
  out += std::string("coalesce_writes = ") +
         (coalesce_writes ? "true" : "false") + "\n";
  out += strfmt("ranks_per_node = %d\n", ranks_per_node);
  out += strfmt("checkpoint_interval = %d\n", checkpoint_interval);
  out += strfmt("checkpoint_retain = %d\n", checkpoint_retain);
  out += strfmt("checkpoint_full_interval = %d\n", checkpoint_full_interval);
  out += strfmt("drain_timeout_ms = %d\n", drain_timeout_ms);
  out += strfmt("max_drain_retries = %d\n", max_drain_retries);
  out += strfmt("degrade_threshold = %d\n", degrade_threshold);
  out += strfmt("degrade_cooldown = %d\n", degrade_cooldown);
  out += "recovery = \"" + recovery + "\"\n";
  out += strfmt("stream_max_steps = %d\n", stream_max_steps);
  out += "stream_policy = \"" + stream_policy + "\"\n";
  out += "aggregation = \"" + aggregation + "\"\n";
  out += "topology = \"" + topology + "\"\n";
  out += strfmt("numa_per_node = %d\n", numa_per_node);
  out += strfmt("nics_per_node = %d\n", nics_per_node);
  if (use_striping) {
    out += "[io.striping]\n";
    out += strfmt("count = %d\n", striping.stripe_count);
    out += strfmt("size = %llu\n",
                  static_cast<unsigned long long>(striping.stripe_size));
  }
  if (!fault_plan.empty()) {
    out += "[io.fault_plan]\n";
    out += fault_plan.to_toml();
  }
  return out;
}

std::string Bit1IoConfig::adios2_toml() const {
  std::string out;
  out += "[adios2.engine]\n";
  out += "type = \"" + engine + "\"\n";
  out += "[adios2.engine.parameters]\n";
  if (num_aggregators > 0)
    out += strfmt("NumAggregators = %d\n", num_aggregators);
  out += std::string("Profile = \"") + (profiling ? "On" : "Off") + "\"\n";
  if (aggregation != "flat" || topology != "flat") {
    // Topology-aware gather path; bp::EngineConfig::from_json picks these
    // up (flat-on-flat stays implicit so pre-topology configs render
    // byte-identically).
    out += "Aggregation = \"" + aggregation + "\"\n";
    out += "Topology = \"" + topology + "\"\n";
    if (numa_per_node > 0) out += strfmt("NumaPerNode = %d\n", numa_per_node);
    if (nics_per_node > 0) out += strfmt("NicsPerNode = %d\n", nics_per_node);
  }
  if (engine == "stream") {
    // Streaming window bound and slow-reader policy (SST QueueLimit /
    // QueueFullPolicy analogue); bp::EngineConfig::from_json picks them up.
    out += strfmt("StreamMaxSteps = %d\n", stream_max_steps);
    out += "StreamPolicy = \"" + stream_policy + "\"\n";
  }
  if (io_batch_depth > 0) {
    // Batched queue-pair submission on the drain path; gated so configs
    // that never set the knobs render byte-identically to before.
    out += strfmt("IoBatchDepth = %d\n", io_batch_depth);
    if (coalesce_writes) out += "CoalesceWrites = \"On\"\n";
  }
  if (async_write) {
    // BP5's asynchronous drain: AsyncWrite moves the subfile appends off the
    // critical path; BufferChunkSize bounds the slice each append moves.
    out += "AsyncWrite = \"On\"\n";
    out += strfmt("BufferChunkSize = %d\n", buffer_chunk_mb);
    if (drain_timeout_ms > 0) {
      // Drain-lane watchdog: cancel + retry a wedged step job, abandon with
      // TimeoutError after the retry budget so close() can never hang.
      out += strfmt("DrainTimeoutMs = %d\n", drain_timeout_ms);
      out += strfmt("MaxDrainRetries = %d\n", max_drain_retries);
    }
  }
  if (codec != "none" && !codec.empty()) {
    out += "[adios2.dataset]\n";
    if (compress_threads > 1) {
      // Block-parallel operator: thread count and block size ride on the
      // operator entry (bp::EngineConfig::from_json picks them up).
      out += strfmt(
          "operators = [ { type = \"%s\", threads = %d, block_kb = %d } ]\n",
          codec.c_str(), compress_threads, compress_block_kb);
    } else {
      out += "operators = [ { type = \"" + codec + "\" } ]\n";
    }
  }
  return out;
}

std::string Bit1IoConfig::label() const {
  if (mode == IoMode::original) return "BIT1 Original I/O";
  std::string out = "BIT1 openPMD + ";
  if (engine == "bp4") out += "BP4";
  else if (engine == "bp5") out += "BP5";
  else if (engine == "stream") out += "STREAM";
  else out += engine;
  if (codec == "blosc") out += " + Blosc";
  if (codec == "bzip2") out += " + bzip2";
  if (num_aggregators == 1) out += " + 1 AGGR";
  else if (num_aggregators > 1)
    out += " + " + std::to_string(num_aggregators) + " AGGR";
  if (async_write) out += " + async";
  if (use_striping)
    out += strfmt(" [stripe -c %d -S %s]", striping.stripe_count,
                  format_bytes(striping.stripe_size).c_str());
  return out;
}

}  // namespace bitio::core
