#pragma once
// The tunable I/O configuration of a BIT1 run — the knobs the paper sweeps:
// original serial I/O vs openPMD, engine (BP4/BP5), number of aggregators
// (OPENPMD_ADIOS2_BP5_NumAgg), compressor (Blosc / bzip2), Lustre striping
// (stripe count / stripe size), and the BP5 asynchronous write pipeline
// (AsyncWrite / BufferChunkSize).  Loadable from TOML ("TOML-based dynamic
// configuration"), renderable back to TOML losslessly, and renderable to the
// adios2 config string the openPMD layer consumes.

#include <string>

#include "fsim/fault_plan.hpp"
#include "fsim/types.hpp"

namespace bitio::core {

enum class IoMode { original, openpmd };

/// One row per TOML key of the [io] table (and its sub-tables): the single
/// source of truth tying the key name to the Bit1IoConfig field it populates
/// and to whether validate() constrains that field.  tools/lint_invariants
/// enforces that every row is parsed by from_toml, rendered by to_toml, and
/// (when `validated`) checked in validate(); the config_registry test drives
/// an exhaustive round-trip off the same table.  Add the row *first* when
/// adding a knob — the linter and test then point at everything left to do.
struct IoConfigKey {
  const char* key;      // TOML key as written under [io] / [io.striping]
  const char* field;    // Bit1IoConfig member the key populates
  bool validated;       // true when validate() constrains the field
};

/// Engine names accepted by Bit1IoConfig::engine — the single source of
/// truth for the string-keyed factory (bp::make_engine).  The
/// engine-registry lint rule (tools/lint_invariants) checks every name
/// here is constructed in bp's builtin_engines(), rendered by
/// to_toml/label, and tagged by darshan::engine_tag; keep the list and
/// those sites in lockstep.
inline constexpr const char* kBit1IoEngines[] = {"bp4", "bp5", "stream"};

/// Aggregation modes accepted by Bit1IoConfig::aggregation — the single
/// source of truth for the two-level gather path.  The topology-registry
/// lint rule (tools/lint_invariants) checks every name here is validated
/// in io_config.cpp, parsed by bp::EngineConfig::from_json, and tagged by
/// darshan::aggregation_tag; keep the list and those sites in lockstep.
inline constexpr const char* kBit1IoAggregationModes[] = {"flat",
                                                         "two_level"};

/// Topology preset names accepted by Bit1IoConfig::topology — the single
/// source of truth for topo::Cluster::preset.  The topology-registry lint
/// rule checks every name here is constructed in topo/topology.cpp and
/// validated in io_config.cpp.
inline constexpr const char* kBit1IoTopologies[] = {"flat", "dardel"};

inline constexpr IoConfigKey kBit1IoConfigKeys[] = {
    {"mode", "mode", false},
    {"engine", "engine", true},
    {"aggregators", "num_aggregators", true},
    {"checkpoint_aggregators", "checkpoint_aggregators", true},
    {"codec", "codec", true},
    {"compress_threads", "compress_threads", true},
    {"compress_block_kb", "compress_block_kb", true},
    {"profiling", "profiling", false},
    {"async_write", "async_write", false},
    {"buffer_chunk_mb", "buffer_chunk_mb", true},
    {"io_batch_depth", "io_batch_depth", true},
    {"coalesce_writes", "coalesce_writes", false},
    {"ranks_per_node", "ranks_per_node", true},
    {"checkpoint_interval", "checkpoint_interval", true},
    {"checkpoint_retain", "checkpoint_retain", true},
    {"checkpoint_full_interval", "checkpoint_full_interval", true},
    {"drain_timeout_ms", "drain_timeout_ms", true},
    {"max_drain_retries", "max_drain_retries", true},
    {"degrade_threshold", "degrade_threshold", true},
    {"degrade_cooldown", "degrade_cooldown", true},
    {"recovery", "recovery", true},
    {"striping", "use_striping", true},
    {"count", "striping.stripe_count", true},
    {"size", "striping.stripe_size", true},
    {"fault_plan", "fault_plan", true},
    {"stream_max_steps", "stream_max_steps", true},
    {"stream_policy", "stream_policy", true},
    {"aggregation", "aggregation", true},
    {"topology", "topology", true},
    {"numa_per_node", "numa_per_node", true},
    {"nics_per_node", "nics_per_node", true},
};

struct Bit1IoConfig {
  IoMode mode = IoMode::openpmd;

  // openPMD / ADIOS2 engine settings.
  std::string engine = "bp4";         // one of kBit1IoEngines
  int num_aggregators = 0;            // diagnostics series; 0 = per node
  int checkpoint_aggregators = 1;     // checkpoint series (shared-file)
  std::string codec = "none";         // "none" | "blosc" | "bzip2"
  // Block-parallel compression pipeline: with compress_threads > 1 each
  // chunk is split into compress_block_kb-KiB blocks compressed
  // concurrently (cz::ParallelCodec); frames stay byte-identical for any
  // thread count, and the storage model charges parallel wall time
  // (fsim::parallel_cpu_seconds) instead of the serial figure.
  int compress_threads = 1;
  int compress_block_kb = 1024;
  bool profiling = false;             // emit profiling.json

  // Asynchronous aggregation drain (BP5 AsyncWrite): end_step snapshots the
  // staged chunks and a background lane drains them to the subfiles while
  // the ranks compute the next step.  `buffer_chunk_mb` mirrors
  // BufferChunkSize: the MiB granularity the drain appends in.
  bool async_write = false;
  int buffer_chunk_mb = 16;

  // Batched queue-pair submission (fsim::SubmissionQueue): with
  // io_batch_depth > 0 the BP drain path issues its subfile and metadata
  // appends as sqe batches behind one doorbell per lane instead of per-op
  // pwrites, and coalesce_writes additionally merges adjacent contiguous
  // sqes into vectored records.  Container bytes are identical either way —
  // only the trace shape (and hence the timing replay) changes.
  // coalesce_writes is inert when io_batch_depth == 0.
  int io_batch_depth = 0;
  bool coalesce_writes = false;

  // Lustre striping applied to the output directory (lfs setstripe).
  bool use_striping = false;
  fsim::StripeSettings striping{1, 1 << 20};

  int ranks_per_node = 128;

  // Resilience: periodic checkpoint epochs (resil::CheckpointManager) and
  // deterministic fault injection into the simulated file system.
  int checkpoint_interval = 0;   // steps between epochs; 0 = disabled
  int checkpoint_retain = 2;     // keep the newest K committed epochs
  // Incremental checkpointing: every Nth epoch is a self-contained *full*
  // epoch; the epochs between are *delta* epochs that store only the blocks
  // whose content changed since the last committed epoch and reference the
  // rest by (base epoch, block).  1 (the default) keeps every epoch full —
  // byte-identical to the pre-delta behaviour.
  int checkpoint_full_interval = 1;
  fsim::FaultPlan fault_plan;    // empty = no injection

  // Online-recovery knobs (see README "Online recovery"):
  //   drain_timeout_ms    bp drain-lane watchdog: a step job whose lane
  //                       stops heartbeating for this long is cancelled and
  //                       retried; 0 disables the watchdog
  //   max_drain_retries   bounded retries before the watchdog abandons a
  //                       wedged step with TimeoutError
  //   degrade_threshold   consecutive flush failures before the degradation
  //                       ladder steps the sink down (async -> sync -> serial)
  //   degrade_cooldown    consecutive clean flushes before stepping back up
  //   recovery            rank-failure policy: "abort" (rethrow, the old
  //                       behaviour) or "shrink" (agree -> shrink -> restore
  //                       from the newest verifying epoch -> resume)
  int drain_timeout_ms = 0;
  int max_drain_retries = 2;
  int degrade_threshold = 3;
  int degrade_cooldown = 8;
  std::string recovery = "abort";

  // Topology-aware aggregation (src/topo): `topology` names a
  // topo::Cluster preset ("flat" keeps the historical flat-pool model;
  // "dardel" is node-hierarchical), `aggregation` selects the gather
  // strategy the BP engine models on it ("flat" = every rank ships
  // straight to its aggregator; "two_level" = rank -> node-leader over
  // shared memory, node-leader -> aggregator over the NICs).  With
  // topology = "flat" no gather is ever modeled, so the trace — and hence
  // the container bytes and every calibrated replay number — is identical
  // to the pre-topology behavior regardless of `aggregation`.
  // numa_per_node / nics_per_node override the preset's hierarchy when
  // > 0; 0 keeps the preset values.
  std::string aggregation = "flat";   // one of kBit1IoAggregationModes
  std::string topology = "flat";      // one of kBit1IoTopologies
  int numa_per_node = 0;
  int nics_per_node = 0;

  // Stream engine (engine = "stream") only: bound on buffered published
  // steps in the in-memory channel, and the slow-reader policy applied when
  // a publish finds the window full ("block" | "drop_oldest" |
  // "disconnect").  Ignored by the file engines.
  int stream_max_steps = 4;
  std::string stream_policy = "block";

  friend bool operator==(const Bit1IoConfig& a, const Bit1IoConfig& b) {
    return a.mode == b.mode && a.engine == b.engine &&
           a.num_aggregators == b.num_aggregators &&
           a.checkpoint_aggregators == b.checkpoint_aggregators &&
           a.codec == b.codec &&
           a.compress_threads == b.compress_threads &&
           a.compress_block_kb == b.compress_block_kb &&
           a.profiling == b.profiling &&
           a.async_write == b.async_write &&
           a.buffer_chunk_mb == b.buffer_chunk_mb &&
           a.io_batch_depth == b.io_batch_depth &&
           a.coalesce_writes == b.coalesce_writes &&
           a.use_striping == b.use_striping &&
           a.striping.stripe_count == b.striping.stripe_count &&
           a.striping.stripe_size == b.striping.stripe_size &&
           a.ranks_per_node == b.ranks_per_node &&
           a.checkpoint_interval == b.checkpoint_interval &&
           a.checkpoint_retain == b.checkpoint_retain &&
           a.checkpoint_full_interval == b.checkpoint_full_interval &&
           a.fault_plan == b.fault_plan &&
           a.drain_timeout_ms == b.drain_timeout_ms &&
           a.max_drain_retries == b.max_drain_retries &&
           a.degrade_threshold == b.degrade_threshold &&
           a.degrade_cooldown == b.degrade_cooldown &&
           a.recovery == b.recovery &&
           a.stream_max_steps == b.stream_max_steps &&
           a.stream_policy == b.stream_policy &&
           a.aggregation == b.aggregation && a.topology == b.topology &&
           a.numa_per_node == b.numa_per_node &&
           a.nics_per_node == b.nics_per_node;
  }

  /// Reject inconsistent configurations: unknown engine or codec, negative
  /// aggregator counts, non-positive buffer chunk / ranks-per-node, or a
  /// stripe size that is zero or not a power of two.  Throws UsageError.
  /// Called by from_toml after parsing; call it directly after building a
  /// config in code.
  void validate() const;

  /// Parse from TOML (validated), e.g.
  ///   [io]
  ///   mode = "openpmd"
  ///   engine = "bp5"
  ///   aggregators = 400
  ///   codec = "blosc"
  ///   async_write = true
  ///   buffer_chunk_mb = 16
  ///   [io.striping]
  ///   count = 8
  ///   size = "16M"
  static Bit1IoConfig from_toml(const std::string& text);

  /// Render back to the [io] TOML accepted by from_toml.  Lossless:
  /// from_toml(to_toml()) reproduces the config exactly.
  std::string to_toml() const;

  /// Render the [adios2] config TOML the miniPMD Series consumes.
  std::string adios2_toml() const;

  /// Human-readable label for tables ("openPMD + BP4 + Blosc + 1 AGGR").
  std::string label() const;
};

}  // namespace bitio::core
