#pragma once
// The tunable I/O configuration of a BIT1 run — the knobs the paper sweeps:
// original serial I/O vs openPMD, engine (BP4/BP5), number of aggregators
// (OPENPMD_ADIOS2_BP5_NumAgg), compressor (Blosc / bzip2), and Lustre
// striping (stripe count / stripe size).  Loadable from TOML ("TOML-based
// dynamic configuration") and renderable back to the adios2 config string
// the openPMD layer consumes.

#include <string>

#include "fsim/types.hpp"

namespace bitio::core {

enum class IoMode { original, openpmd };

struct Bit1IoConfig {
  IoMode mode = IoMode::openpmd;

  // openPMD / ADIOS2 engine settings.
  std::string engine = "bp4";         // "bp4" | "bp5"
  int num_aggregators = 0;            // diagnostics series; 0 = per node
  int checkpoint_aggregators = 1;     // checkpoint series (shared-file)
  std::string codec = "none";         // "none" | "blosc" | "bzip2"
  bool profiling = false;             // emit profiling.json

  // Lustre striping applied to the output directory (lfs setstripe).
  bool use_striping = false;
  fsim::StripeSettings striping{1, 1 << 20};

  int ranks_per_node = 128;

  /// Parse from TOML, e.g.
  ///   [io]
  ///   mode = "openpmd"
  ///   engine = "bp4"
  ///   aggregators = 400
  ///   codec = "blosc"
  ///   [io.striping]
  ///   count = 8
  ///   size = "16M"
  static Bit1IoConfig from_toml(const std::string& text);

  /// Render the [adios2] config TOML the miniPMD Series consumes.
  std::string adios2_toml() const;

  /// Human-readable label for tables ("openPMD + BP4 + Blosc + 1 AGGR").
  std::string label() const;
};

}  // namespace bitio::core
