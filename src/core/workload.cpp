#include "core/workload.hpp"

#include <algorithm>

#include "bp/engine.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::core {

namespace {

constexpr std::uint64_t kStdioRecord = 2 * KiB;    // line-buffered ASCII
constexpr std::uint64_t kBinaryRecord = 64 * KiB;  // fwrite'd checkpoint
constexpr std::uint64_t kInputBytes = 2 * KiB;     // 1-3 kB input file

std::uint32_t record_count(std::uint64_t bytes, std::uint64_t record) {
  return std::uint32_t(std::max<std::uint64_t>(1, (bytes + record - 1) / record));
}

EpochResult summarize(const fsim::SharedFs& fs, const std::string& dir,
                      const fsim::ReplayReport& replay) {
  EpochResult result;
  result.makespan_s = replay.makespan;
  result.bytes_written = replay.bytes_written;
  result.write_gibps =
      replay.makespan > 0
          ? double(replay.bytes_written) / replay.makespan / double(GiB)
          : 0.0;
  result.bytes_gathered = replay.bytes_transferred;
  result.mean_meta_s = replay.mean_meta_time();
  result.mean_write_s = replay.mean_write_time();
  result.mean_read_s = replay.mean_read_time();
  result.mean_drain_s = replay.mean_drain_time();
  result.cpu_by_tag = replay.cpu_by_tag;

  std::uint64_t sum = 0;
  for (const auto* file : fs.store().list_recursive(dir)) {
    ++result.total_files;
    sum += file->size;
    result.max_file_bytes = std::max(result.max_file_bytes, file->size);
  }
  if (result.total_files > 0) result.avg_file_bytes = sum / result.total_files;
  return result;
}

}  // namespace

ScaleSpec ScaleSpec::throughput(int nodes) {
  ScaleSpec spec;
  spec.nodes = nodes;
  spec.dat_dumps = 10;
  spec.checkpoints = 1;
  spec.diag_run_bytes = 48ull << 30;
  spec.checkpoint_bytes = 2ull << 20;
  return spec;
}

ScaleSpec ScaleSpec::table2(int nodes) {
  ScaleSpec spec;
  spec.nodes = nodes;
  spec.dat_dumps = 200;  // full run: the census sees final file sizes
  spec.checkpoints = 1;
  spec.diag_run_bytes = 486ull << 20;
  spec.checkpoint_bytes = 16ull << 10;  // Table II: no file exceeds 25 KiB

  return spec;
}

std::uint64_t ScaleSpec::diag_bytes_for_rank(int rank) const {
  const double r = double(ranks());
  // Normalized skew: rank 0 gets rank0_skew x the plain share, everyone
  // still sums to diag_run_bytes.
  const double normalizer = (r - 1.0 + rank0_skew);
  const double share = (rank == 0 ? rank0_skew : 1.0) / normalizer;
  const double per_dump =
      (double(diag_run_bytes) * share + double(per_rank_run_bytes)) /
      double(dumps_per_run);
  return std::uint64_t(per_dump);
}

std::uint64_t ScaleSpec::ckpt_bytes_for_rank(int rank) const {
  const std::uint64_t r = std::uint64_t(ranks());
  const std::uint64_t base = checkpoint_bytes / r;
  // Distribute the remainder to the first ranks so totals are exact.
  return base + (std::uint64_t(rank) < checkpoint_bytes % r ? 1 : 0);
}

EpochResult run_original_epoch(const fsim::SystemProfile& profile,
                               const ScaleSpec& spec, bool timing) {
  fsim::SharedFs fs(profile.ost_count, /*store_data=*/false,
                    profile.default_stripe);
  fs.set_tracing(timing);
  const int ranks = spec.ranks();
  const std::string dir = "run_original";

  // Input read: rank 0 materializes the small input file, every rank reads
  // it ("The input to BIT1 represents a relatively small (1-3 kB) file read
  // by all processes").
  {
    fsim::FsClient root(fs, 0);
    const int fd = root.open("bit1.inp", fsim::OpenMode::create);
    root.write_simulated(fd, kInputBytes, 1);
    root.close(fd);
  }
  for (int r = 0; r < ranks; ++r) {
    fsim::FsClient client(fs, fsim::ClientId(r));
    const int fd = client.open("bit1.inp", fsim::OpenMode::read);
    client.read_simulated(fd, kInputBytes, 1);
    client.close(fd);
  }

  // Diagnostic dumps: every rank re-opens and appends its two .dat files
  // in stdio-sized synchronous records; rank 0 appends four history files.
  for (int dump = 0; dump < spec.dat_dumps; ++dump) {
    for (int r = 0; r < ranks; ++r) {
      fsim::FsClient client(fs, fsim::ClientId(r));
      const std::uint64_t bytes = spec.diag_bytes_for_rank(r);
      const std::uint64_t slow = bytes * 3 / 5;   // profiles + VDFs
      const std::uint64_t slow1 = bytes - slow;   // collision diagnostics
      for (const auto& [stem, n] :
           {std::pair<const char*, std::uint64_t>{"slow_", slow},
            std::pair<const char*, std::uint64_t>{"slow1_", slow1}}) {
        const std::string path =
            dir + "/" + stem + std::to_string(r) + ".dat";
        const int fd = client.open(path, dump == 0
                                             ? fsim::OpenMode::create
                                             : fsim::OpenMode::append);
        client.write_simulated(fd, n, record_count(n, kStdioRecord));
        client.close(fd);
      }
    }
    fsim::FsClient root(fs, 0);
    for (const char* name :
         {"history.dat", "energy.dat", "pwall.dat", "iondiag.dat"}) {
      const std::string path = dir + "/" + std::string(name);
      const int fd = root.open(path, dump == 0 ? fsim::OpenMode::create
                                               : fsim::OpenMode::append);
      root.write_simulated(fd, 128, 1);
      root.close(fd);
    }
  }

  // Checkpoints: rank 0 writes the gathered state serially ("serial I/O"),
  // in larger fwrite records, overwriting the single bit1.dmp.
  for (int c = 0; c < spec.checkpoints; ++c) {
    fsim::FsClient root(fs, 0);
    const int fd =
        root.open(dir + "/bit1.dmp", fsim::OpenMode::create_or_truncate);
    root.write_simulated(fd, spec.checkpoint_bytes,
                         record_count(spec.checkpoint_bytes, kBinaryRecord));
    root.fsync(fd);
    root.close(fd);
  }

  const auto replay =
      timing ? replay_trace(profile, fs.store(), fs.trace(), ranks)
             : fsim::ReplayReport{};
  return summarize(fs, dir, replay);
}

EpochResult run_openpmd_epoch(const fsim::SystemProfile& profile,
                              const ScaleSpec& spec,
                              const Bit1IoConfig& config, bool timing) {
  if (config.mode != IoMode::openpmd)
    throw UsageError("run_openpmd_epoch: config.mode must be openpmd");
  fsim::SharedFs fs(profile.ost_count, /*store_data=*/false,
                    profile.default_stripe);
  fs.set_tracing(timing);
  const int ranks = spec.ranks();
  const std::string dir = "run_openpmd";

  {
    fsim::FsClient root(fs, 0);
    if (config.use_striping)
      root.setstripe(dir, config.striping);  // Table III
    else
      root.mkdir(dir);
    // Same input-read phase as the original path (Fig 5: read costs are
    // consistent between the two configurations).
    const int fd = root.open("bit1.inp", fsim::OpenMode::create);
    root.write_simulated(fd, kInputBytes, 1);
    root.close(fd);
  }
  for (int r = 0; r < ranks; ++r) {
    fsim::FsClient client(fs, fsim::ClientId(r));
    const int fd = client.open("bit1.inp", fsim::OpenMode::read);
    client.read_simulated(fd, kInputBytes, 1);
    client.close(fd);
  }

  const double codec_ratio = config.codec == "blosc"   ? spec.blosc_ratio
                             : config.codec == "bzip2" ? spec.bzip2_ratio
                                                       : 1.0;
  auto engine_config = [&](int aggregators, bool profiling) {
    bp::EngineConfig engine;
    engine.num_aggregators = aggregators;
    engine.ranks_per_node = spec.ranks_per_node;
    engine.codec = config.codec;
    engine.compress_threads = config.compress_threads;
    engine.compress_block_kb = std::size_t(config.compress_block_kb);
    engine.profiling = profiling;
    engine.synthetic_codec_ratio = codec_ratio;
    engine.mem_bandwidth_bps = profile.client_mem_bandwidth_bps;
    engine.async_write = config.async_write;
    engine.buffer_chunk_mb = std::size_t(config.buffer_chunk_mb);
    // Batched queue-pair submission: drain-lane appends become sqe batches
    // behind one doorbell per lane (same container bytes, cheaper replay).
    engine.io_batch_depth = config.io_batch_depth;
    engine.coalesce_writes = config.coalesce_writes;
    // Topology-modeled gather path (src/topo): the engine records the
    // rank -> aggregator gathers on the configured cluster hierarchy.
    engine.aggregation = config.aggregation;
    engine.topology = config.topology;
    engine.numa_per_node = config.numa_per_node;
    engine.nics_per_node = config.nics_per_node;
    return engine;
  };

  // Engine selection goes through the string-keyed registry: the config's
  // engine name picks BP4/BP5/stream without this call site changing.
  auto diag_ptr = bp::make_engine(
      config.engine, fs, dir + "/dat_file." + config.engine,
      engine_config(config.num_aggregators, config.profiling), ranks);
  auto ckpt_ptr = bp::make_engine(
      config.engine, fs, dir + "/dmp_file." + config.engine,
      engine_config(config.checkpoint_aggregators, false), ranks);
  bp::Engine& diag = *diag_ptr;
  bp::Engine& ckpt = *ckpt_ptr;

  using bp::Datatype;
  const char* species[] = {"e", "D+", "D"};

  // Diagnostic dumps: per species a 1D "vdf" array with per-rank element
  // counts proportional to the volume model, a per-rank counter array, and
  // the rank-0 density profile.
  for (int dump = 0; dump < spec.dat_dumps; ++dump) {
    diag.begin_step(std::uint64_t(dump));
    // Per-species element layout (uniform over species).
    std::vector<std::uint64_t> offsets(std::size_t(ranks) + 1, 0);
    for (int r = 0; r < ranks; ++r) {
      const std::uint64_t elems =
          std::max<std::uint64_t>(1, spec.diag_bytes_for_rank(r) / 8 / 3);
      offsets[std::size_t(r) + 1] = offsets[std::size_t(r)] + elems;
    }
    const std::uint64_t total = offsets[std::size_t(ranks)];
    for (const char* name : species) {
      const std::string vdf = std::string("vdf_") + name;
      for (int r = 0; r < ranks; ++r) {
        const std::uint64_t rr = std::uint64_t(r);
        diag.put_synthetic(r, vdf, Datatype::float64, {total},
                           {offsets[rr]}, {offsets[rr + 1] - offsets[rr]});
      }
    }
    diag.end_step();
  }

  // Checkpoints: iteration 0 rewritten; 5 particle arrays per species with
  // per-rank chunks at exscan offsets.
  const char* arrays[] = {"position/x", "velocity/x", "velocity/y",
                          "velocity/z", "weighting"};
  for (int c = 0; c < spec.checkpoints; ++c) {
    ckpt.begin_step(0);
    std::vector<std::uint64_t> offsets(std::size_t(ranks) + 1, 0);
    for (int r = 0; r < ranks; ++r) {
      const std::uint64_t elems = std::max<std::uint64_t>(
          1, spec.ckpt_bytes_for_rank(r) / 8 / (3 * 5));
      offsets[std::size_t(r) + 1] = offsets[std::size_t(r)] + elems;
    }
    const std::uint64_t total = offsets[std::size_t(ranks)];
    for (const char* sp : species) {
      for (const char* array : arrays) {
        const std::string var =
            std::string("particles/") + sp + "/" + array;
        for (int r = 0; r < ranks; ++r) {
          const std::uint64_t rr = std::uint64_t(r);
          ckpt.put_synthetic(r, var, Datatype::float64, {total},
                             {offsets[rr]}, {offsets[rr + 1] - offsets[rr]});
        }
      }
    }
    ckpt.end_step();
  }

  diag.close();
  ckpt.close();

  // Replay against the same hierarchy the engine modelled its gathers on:
  // on a hierarchical topology the node size follows the sweep's
  // ranks_per_node and the config's NUMA/NIC overrides land in the profile.
  // Gated on the topology so flat-mode replay numbers stay identical to the
  // pre-topology behavior.
  fsim::SystemProfile replay_profile = profile;
  if (config.topology != "flat") {
    replay_profile.ranks_per_node = spec.ranks_per_node;
    if (config.numa_per_node > 0)
      replay_profile.numa_per_node = config.numa_per_node;
    if (config.nics_per_node > 0)
      replay_profile.nics_per_node = config.nics_per_node;
  }
  const auto replay =
      timing ? replay_trace(replay_profile, fs.store(), fs.trace(), ranks)
             : fsim::ReplayReport{};
  return summarize(fs, dir, replay);
}

}  // namespace bitio::core
