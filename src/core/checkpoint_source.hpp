#pragma once
// Where restart bytes come from: an abstraction over "one openPMD series"
// vs "a chain of delta epochs".
//
// The restore algorithms in checkpoint_payload.cpp only ever need three
// things from a checkpoint: the simulation step it froze, how many ranks
// wrote it, and ranged reads of the flat global arrays behind the bp
// variable paths of the checkpoint schema ("particles/e/position/x",
// "meshes/rng_state/SCALAR", ...).  CheckpointSource narrows the restore
// path to exactly that surface, so the same bit-exact / repartitioned
// restore code runs against a plain series (SeriesCheckpointSource, the
// differential reference) and against a delta chain that resolves each
// range through the footer indexes of several containers
// (resil::ChainCheckpointSource) — the latter reading only the blocks a
// range actually touches.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "openpmd/series.hpp"

namespace bitio::core {

class CheckpointSource {
public:
  virtual ~CheckpointSource() = default;

  /// Simulation step the checkpoint froze (the iteration's time()).
  virtual std::uint64_t step() = 0;

  /// Communicator size that wrote the checkpoint.
  virtual std::uint64_t writer_ranks() = 0;

  /// Read `count` elements at `elem_offset` of the 1-D global array behind
  /// bp variable path `var`.  Throws UsageError when the variable is absent
  /// or the range exceeds its extent; FormatError on corruption.
  virtual std::vector<std::uint64_t> read_u64(const std::string& var,
                                              std::uint64_t elem_offset,
                                              std::uint64_t count) = 0;
  virtual std::vector<double> read_f64(const std::string& var,
                                       std::uint64_t elem_offset,
                                       std::uint64_t count) = 0;
};

/// CheckpointSource over a single self-contained openPMD series — the
/// adaptor's dmp_file and every *full* epoch.  Loads each record component
/// through the pmd read path (full array) and slices; correctness
/// reference for the chain source's block-by-block reads.
class SeriesCheckpointSource final : public CheckpointSource {
public:
  /// Opens `path` read-only.
  SeriesCheckpointSource(fsim::SharedFs& fs, const std::string& path);

  std::uint64_t step() override;
  std::uint64_t writer_ranks() override;
  std::vector<std::uint64_t> read_u64(const std::string& var,
                                      std::uint64_t elem_offset,
                                      std::uint64_t count) override;
  std::vector<double> read_f64(const std::string& var,
                               std::uint64_t elem_offset,
                               std::uint64_t count) override;

private:
  /// Resolve a bp variable path ("particles/e/position/x",
  /// "meshes/rank_count_e/SCALAR") to the iteration's record component.
  pmd::RecordComponent& component(const std::string& var);

  pmd::Series series_;
  pmd::Iteration& iteration_;
};

}  // namespace bitio::core
