#include "core/adaptor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace bitio::core {

using picmc::DiagnosticSnapshot;
using picmc::Simulation;
using pmd::Access;
using pmd::Datatype;

namespace {

std::string series_file(const std::string& run_dir, const char* stem,
                        const std::string& engine) {
  return run_dir + "/" + stem + "." + engine;
}

/// Diagnostics engine config: NumAgg aggregators, codec, profiling.
std::string diag_toml(const Bit1IoConfig& config) { return config.adios2_toml(); }

/// Checkpoint engine config: shared-file (checkpoint_aggregators), same
/// codec, no profiling (profiling.json is counted once, on the diag series).
std::string ckpt_toml(const Bit1IoConfig& config) {
  Bit1IoConfig c = config;
  c.num_aggregators = config.checkpoint_aggregators;
  c.profiling = false;
  return c.adios2_toml();
}

}  // namespace

Bit1OpenPmdAdaptor::Bit1OpenPmdAdaptor(fsim::SharedFs& fs,
                                       std::string run_dir,
                                       Bit1IoConfig config, int nranks)
    : fs_(fs),
      run_dir_(std::move(run_dir)),
      config_(std::move(config)),
      nranks_(nranks) {
  if (nranks_ <= 0)
    throw UsageError("Bit1OpenPmdAdaptor: nranks must be positive");
  if (config_.mode != IoMode::openpmd)
    throw UsageError("Bit1OpenPmdAdaptor: config.mode must be openpmd");
  config_.validate();

  fsim::FsClient root(fs_, 0);
  if (config_.use_striping) {
    // Table III: lfs setstripe -c <count> -S <size> <run dir>; all series
    // files created inside inherit the layout.
    root.setstripe(run_dir_, config_.striping);
  } else {
    root.mkdir(run_dir_);
  }

  diag_series_ = std::make_unique<pmd::Series>(
      fs_, series_file(run_dir_, "dat_file", config_.engine), Access::create,
      nranks_, diag_toml(config_));
  ckpt_series_ = std::make_unique<pmd::Series>(
      fs_, series_file(run_dir_, "dmp_file", config_.engine), Access::create,
      nranks_, ckpt_toml(config_));

  staged_diag_.resize(std::size_t(nranks_));
  staged_ckpt_.resize(std::size_t(nranks_));
}

Bit1OpenPmdAdaptor::~Bit1OpenPmdAdaptor() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw.
  }
}

std::string Bit1OpenPmdAdaptor::diag_path() const {
  return series_file(run_dir_, "dat_file", config_.engine);
}

std::string Bit1OpenPmdAdaptor::checkpoint_path() const {
  return series_file(run_dir_, "dmp_file", config_.engine);
}

void Bit1OpenPmdAdaptor::require_species_layout(const Simulation& sim) {
  // First staging call fixes the species layout; later calls must agree.
  std::vector<std::string> names;
  for (std::size_t s = 0; s < sim.species_count(); ++s)
    names.push_back(sim.species(s).config.name);
  if (species_names_.empty()) {
    species_names_ = std::move(names);
    nnodes_ = sim.grid().nnodes();
    return;
  }
  if (names != species_names_ || nnodes_ != sim.grid().nnodes())
    throw UsageError("Bit1OpenPmdAdaptor: inconsistent simulation layout");
}

void Bit1OpenPmdAdaptor::stage_diagnostics(int rank, const Simulation& sim,
                                           const DiagnosticSnapshot& snap) {
  util::MutexLock lock(mutex_);
  if (rank < 0 || rank >= nranks_)
    throw UsageError("Bit1OpenPmdAdaptor: rank out of range");
  require_species_layout(sim);
  if (snap.species.size() != species_names_.size())
    throw UsageError("Bit1OpenPmdAdaptor: snapshot species mismatch");

  RankDiag staged;
  staged.present = true;
  staged.ionization_events = snap.ionization_events;
  for (const auto& sp : snap.species) {
    staged.vdf.push_back(sp.vdf_vx);
    staged.count.push_back(sp.particle_count);
    staged.energy.push_back(sp.kinetic_energy);
    staged.weight.push_back(sp.total_weight);
    if (rank == 0)
      staged.density_rank0.insert(staged.density_rank0.end(),
                                  sp.density.begin(), sp.density.end());
  }
  staged_diag_[std::size_t(rank)] = std::move(staged);
}

void Bit1OpenPmdAdaptor::flush_diagnostics(std::uint64_t step, double time) {
  util::MutexLock lock(mutex_);
  std::size_t bins = 0;
  for (const auto& staged : staged_diag_)
    if (staged.present && !staged.vdf.empty()) bins = staged.vdf[0].size();
  if (bins == 0)
    throw UsageError("Bit1OpenPmdAdaptor: no staged diagnostics to flush");

  auto& iteration = diag_series_->write_iteration(step);
  iteration.set_time(time);

  const std::uint64_t ranks = std::uint64_t(nranks_);
  for (std::size_t s = 0; s < species_names_.size(); ++s) {
    const std::string& name = species_names_[s];
    // Flattened [nranks * bins] velocity distribution, one row per rank.
    auto& vdf = iteration.mesh("vdf_" + name).component();
    vdf.reset_dataset(Datatype::float64, {ranks * bins});
    auto& count = iteration.mesh("particle_count_" + name).component();
    count.reset_dataset(Datatype::uint64, {ranks});
    auto& energy = iteration.mesh("energy_" + name).component();
    energy.reset_dataset(Datatype::float64, {ranks});
    auto& weight = iteration.mesh("weight_" + name).component();
    weight.reset_dataset(Datatype::float64, {ranks});

    for (int r = 0; r < nranks_; ++r) {
      const RankDiag& staged = staged_diag_[std::size_t(r)];
      if (!staged.present) continue;
      const std::uint64_t rr = std::uint64_t(r);
      vdf.store_chunk<double>(r, staged.vdf[s], {rr * bins}, {bins});
      count.store_chunk<std::uint64_t>(
          r, std::span<const std::uint64_t>(&staged.count[s], 1), {rr}, {1});
      energy.store_chunk<double>(
          r, std::span<const double>(&staged.energy[s], 1), {rr}, {1});
      weight.store_chunk<double>(
          r, std::span<const double>(&staged.weight[s], 1), {rr}, {1});
    }

    // The globally reduced density profile, written by rank 0 only.
    const RankDiag& root = staged_diag_[0];
    if (root.present && root.density_rank0.size() ==
                            species_names_.size() * nnodes_) {
      auto& density = iteration.mesh("density_" + name).component();
      density.reset_dataset(Datatype::float64, {nnodes_});
      density.store_chunk<double>(
          0,
          std::span<const double>(root.density_rank0.data() + s * nnodes_,
                                  nnodes_),
          {0}, {nnodes_});
    }
  }
  iteration.close();
  for (auto& staged : staged_diag_) staged = RankDiag{};
}

void Bit1OpenPmdAdaptor::stage_checkpoint(int rank, const Simulation& sim) {
  util::MutexLock lock(mutex_);
  if (rank < 0 || rank >= nranks_)
    throw UsageError("Bit1OpenPmdAdaptor: rank out of range");
  require_species_layout(sim);
  staged_ckpt_[std::size_t(rank)] = capture_rank_state(sim);
}

void Bit1OpenPmdAdaptor::flush_checkpoint() {
  util::MutexLock lock(mutex_);
  write_checkpoint_iteration(*ckpt_series_, staged_ckpt_, species_names_,
                             nranks_);
  for (auto& staged : staged_ckpt_) staged = RankCheckpoint{};
}

void Bit1OpenPmdAdaptor::restore(fsim::SharedFs& fs,
                                 const std::string& run_dir,
                                 const Bit1IoConfig& config,
                                 picmc::Simulation& sim) {
  pmd::Series series(fs, series_file(run_dir, "dmp_file", config.engine),
                     Access::read_only);
  restore_from_series(series, sim);
}

void Bit1OpenPmdAdaptor::synchronize() {
  util::MutexLock lock(mutex_);
  if (closed_) return;
  if (diag_series_) diag_series_->flush(pmd::FlushMode::sync);
  if (ckpt_series_) ckpt_series_->flush(pmd::FlushMode::sync);
}

void Bit1OpenPmdAdaptor::close() {
  // Under the lock: a close racing a synchronize() (which checks closed_)
  // must not let the flush observe half-closed series.
  util::MutexLock lock(mutex_);
  if (closed_) return;
  closed_ = true;
  if (diag_series_) diag_series_->close();
  if (ckpt_series_) ckpt_series_->close();
}

}  // namespace bitio::core
