#pragma once
// The checkpoint payload: what one rank contributes to a restart dump and
// how the staged per-rank states become an openPMD iteration (and back).
//
// Extracted from Bit1OpenPmdAdaptor so the resilience layer
// (resil::CheckpointManager) can write versioned checkpoint *epochs* with
// exactly the same on-disk schema the adaptor's dmp_file series uses:
//   particles/<species>/{position/x, velocity/{x,y,z}, weighting}
//   meshes/rank_count_<species>, absorbed_<species>, absorbed_weight_<species>
//   meshes/rng_state, ionization_events, ionized_weight
// with iteration time() carrying the simulation step.  Restores are
// bit-exact: particle arrays, per-rank RNG state, Monte Carlo totals and
// absorption counters all round-trip unchanged.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "openpmd/series.hpp"
#include "picmc/simulation.hpp"

namespace bitio::core {

/// One rank's full restart state.
struct RankCheckpoint {
  bool present = false;
  // Per species particle arrays.
  std::vector<std::vector<double>> x, vx, vy, vz, w;
  std::vector<std::uint64_t> absorbed_left, absorbed_right;
  std::vector<double> absorbed_weight;
  std::array<std::uint64_t, 4> rng{};
  std::uint64_t step = 0;
  std::uint64_t ionization_events = 0;
  double ionized_weight = 0.0;
};

/// Snapshot `sim`'s restart state (rank-local; cheap copies of the particle
/// arrays plus RNG/MC scalars).
RankCheckpoint capture_rank_state(const picmc::Simulation& sim);

/// Write the staged per-rank states (indexed by rank, size `nranks`) as
/// iteration 0 of `series` — the exscan over per-rank particle counts, the
/// storeChunk calls, and the RNG/MC meshes.  Closes the iteration.
void write_checkpoint_iteration(pmd::Series& series,
                                const std::vector<RankCheckpoint>& staged,
                                const std::vector<std::string>& species_names,
                                int nranks);

/// Restore `sim` (rank sim.rank() of sim.nranks()) from iteration 0 of an
/// open read-only `series`.  Throws UsageError if the checkpoint was
/// written with a different communicator size.
void restore_from_series(pmd::Series& series, picmc::Simulation& sim);

/// Restore `sim` from a checkpoint written by *any* communicator size (the
/// shrink-recovery path: a dump from N ranks restored onto the N-1
/// survivors).  When the sizes match this delegates to restore_from_series
/// and is bit-exact, RNG included.  Otherwise the global particle
/// population is re-partitioned into contiguous equal slices (rank r takes
/// total/n plus one extra when r < total%n), the absorption counters and
/// Monte Carlo totals are summed onto the new rank 0 (they are global
/// diagnostics, not per-particle state), and each rank's RNG is re-seeded
/// deterministically from (step, new size, rank) so reshaped restarts stay
/// reproducible.
void restore_repartitioned(pmd::Series& series, picmc::Simulation& sim);

}  // namespace bitio::core
