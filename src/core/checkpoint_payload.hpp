#pragma once
// The checkpoint payload: what one rank contributes to a restart dump and
// how the staged per-rank states become an openPMD iteration (and back).
//
// Extracted from Bit1OpenPmdAdaptor so the resilience layer
// (resil::CheckpointManager) can write versioned checkpoint *epochs* with
// exactly the same on-disk schema the adaptor's dmp_file series uses:
//   particles/<species>/{position/x, velocity/{x,y,z}, weighting}
//   meshes/rank_count_<species>, absorbed_<species>, absorbed_weight_<species>
//   meshes/rng_state, ionization_events, ionized_weight
// with iteration time() carrying the simulation step.  Restores are
// bit-exact: particle arrays, per-rank RNG state, Monte Carlo totals and
// absorption counters all round-trip unchanged.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/checkpoint_source.hpp"
#include "openpmd/series.hpp"
#include "picmc/simulation.hpp"

namespace bitio::core {

/// One rank's full restart state.
struct RankCheckpoint {
  bool present = false;
  // Per species particle arrays.
  std::vector<std::vector<double>> x, vx, vy, vz, w;
  std::vector<std::uint64_t> absorbed_left, absorbed_right;
  std::vector<double> absorbed_weight;
  std::array<std::uint64_t, 4> rng{};
  std::uint64_t step = 0;
  std::uint64_t ionization_events = 0;
  double ionized_weight = 0.0;
};

/// Snapshot `sim`'s restart state (rank-local; cheap copies of the particle
/// arrays plus RNG/MC scalars).
RankCheckpoint capture_rank_state(const picmc::Simulation& sim);

/// One dedup unit of the checkpoint payload: the chunk a specific writer
/// rank stores for one bp variable of the schema above.  `hash` is FNV-1a
/// 64 over the raw payload bytes (util::hash64), the content identity the
/// incremental-checkpoint layer compares across epochs.
struct CheckpointBlock {
  std::string var;           // bp variable path, e.g. "particles/e/position/x"
  int rank = 0;              // writer rank (the chunk's address in the var)
  std::uint64_t offset = 0;  // element offset in the global array
  std::uint64_t count = 0;   // element count
  std::uint64_t bytes = 0;   // raw payload bytes (count * 8: all vars are 64-bit)
  std::uint64_t hash = 0;    // FNV-1a 64 of the raw payload bytes
};

/// Enumerate every block write_checkpoint_iteration would store for this
/// staging table — same variables, same ranks, same exscan offsets, in the
/// same order.  The delta-epoch layer diffs this list against the last
/// committed epoch to decide which blocks actually need writing.
std::vector<CheckpointBlock> checkpoint_blocks(
    const std::vector<RankCheckpoint>& staged,
    const std::vector<std::string>& species_names, int nranks);

/// Predicate selecting which (variable, rank) blocks a checkpoint write
/// stores; blocks it rejects are expected to be referenced from an earlier
/// epoch by the caller's manifest.
using BlockKeep = std::function<bool(const std::string& var, int rank)>;

/// Write the staged per-rank states (indexed by rank, size `nranks`) as
/// iteration 0 of `series` — the exscan over per-rank particle counts, the
/// storeChunk calls, and the RNG/MC meshes.  Closes the iteration.
void write_checkpoint_iteration(pmd::Series& series,
                                const std::vector<RankCheckpoint>& staged,
                                const std::vector<std::string>& species_names,
                                int nranks);

/// Filtered variant for delta epochs: datasets keep their full global
/// extents, but store_chunk runs only for blocks `keep` accepts.  With an
/// always-true predicate this is byte-identical to the plain overload.
void write_checkpoint_iteration(pmd::Series& series,
                                const std::vector<RankCheckpoint>& staged,
                                const std::vector<std::string>& species_names,
                                int nranks, const BlockKeep& keep);

/// Restore `sim` (rank sim.rank() of sim.nranks()) from iteration 0 of an
/// open read-only `series`.  Throws UsageError if the checkpoint was
/// written with a different communicator size.
void restore_from_series(pmd::Series& series, picmc::Simulation& sim);

/// Restore `sim` from a checkpoint written by *any* communicator size (the
/// shrink-recovery path: a dump from N ranks restored onto the N-1
/// survivors).  When the sizes match this delegates to restore_from_series
/// and is bit-exact, RNG included.  Otherwise the global particle
/// population is re-partitioned into contiguous equal slices (rank r takes
/// total/n plus one extra when r < total%n), the absorption counters and
/// Monte Carlo totals are summed onto the new rank 0 (they are global
/// diagnostics, not per-particle state), and each rank's RNG is re-seeded
/// deterministically from (step, new size, rank) so reshaped restarts stay
/// reproducible.
void restore_repartitioned(pmd::Series& series, picmc::Simulation& sim);

/// restore_from_series generalized over a CheckpointSource: bit-exact
/// restore of rank sim.rank() (RNG and MC totals included), reading only
/// the ranges that rank needs — against a chain source this touches only
/// the referenced blocks, never the whole arrays.  Throws UsageError when
/// the checkpoint was written with a different communicator size.
void restore_from_source(CheckpointSource& source, picmc::Simulation& sim);

/// restore_repartitioned generalized over a CheckpointSource: same slicing,
/// counter-summing and deterministic RNG re-derivation as the series
/// overload (the two are differentially tested against each other), with
/// ranged reads so each survivor touches only its own slice of the chain.
void restore_repartitioned(CheckpointSource& source, picmc::Simulation& sim);

}  // namespace bitio::core
