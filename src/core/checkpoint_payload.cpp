#include "core/checkpoint_payload.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash64.hpp"

namespace bitio::core {

using picmc::Simulation;
using pmd::Datatype;

namespace {

/// bp variable paths of the checkpoint schema — the block addresses the
/// dedup layer and the chain source share with the containers themselves.
std::string particle_var(const std::string& species, const std::string& record,
                         const std::string& comp) {
  return "particles/" + species + "/" + record + "/" + comp;
}

std::string mesh_var(const std::string& name) {
  return "meshes/" + name + "/" + pmd::kScalar;
}

std::uint64_t hash_f64(std::span<const double> data) {
  return util::hash64_of<double>(data);
}

std::uint64_t hash_u64(std::span<const std::uint64_t> data) {
  return util::hash64_of<std::uint64_t>(data);
}

}  // namespace

RankCheckpoint capture_rank_state(const Simulation& sim) {
  RankCheckpoint staged;
  staged.present = true;
  staged.step = sim.current_step();
  staged.ionization_events = sim.ionization_events();
  staged.ionized_weight = sim.ionized_weight();
  staged.rng = const_cast<Simulation&>(sim).rng().state();
  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    const picmc::Species& sp = sim.species(s);
    staged.x.push_back(sp.particles.x());
    staged.vx.push_back(sp.particles.vx());
    staged.vy.push_back(sp.particles.vy());
    staged.vz.push_back(sp.particles.vz());
    staged.w.push_back(sp.particles.w());
    staged.absorbed_left.push_back(sp.absorbed_left);
    staged.absorbed_right.push_back(sp.absorbed_right);
    staged.absorbed_weight.push_back(sp.absorbed_weight);
  }
  return staged;
}

std::vector<CheckpointBlock> checkpoint_blocks(
    const std::vector<RankCheckpoint>& staged_all,
    const std::vector<std::string>& species_names, int nranks) {
  // Mirrors write_checkpoint_iteration exactly: same variables, same
  // ranks, same exscan offsets, same order.  The differential tests pin
  // the two together — a schema change that touches one but not the other
  // breaks the delta round-trip immediately.
  std::vector<CheckpointBlock> blocks;
  auto add = [&blocks](std::string var, int rank, std::uint64_t offset,
                       std::uint64_t count, std::uint64_t hash) {
    blocks.push_back(CheckpointBlock{std::move(var), rank, offset, count,
                                     count * 8, hash});
  };

  for (std::size_t s = 0; s < species_names.size(); ++s) {
    const std::string& name = species_names[s];
    std::vector<std::uint64_t> counts(std::size_t(nranks), 0);
    for (int r = 0; r < nranks; ++r)
      if (staged_all[std::size_t(r)].present)
        counts[std::size_t(r)] = staged_all[std::size_t(r)].x[s].size();
    std::uint64_t total = 0;
    std::vector<std::uint64_t> offsets(std::size_t(nranks), 0);
    for (int r = 0; r < nranks; ++r) {
      offsets[std::size_t(r)] = total;
      total += counts[std::size_t(r)];
    }

    for (int r = 0; r < nranks; ++r) {
      const RankCheckpoint& staged = staged_all[std::size_t(r)];
      if (!staged.present) continue;
      const std::uint64_t rr = std::uint64_t(r);
      const std::uint64_t n = counts[rr];
      add(particle_var(name, "position", "x"), r, offsets[rr], n,
          hash_f64(staged.x[s]));
      add(particle_var(name, "velocity", "x"), r, offsets[rr], n,
          hash_f64(staged.vx[s]));
      add(particle_var(name, "velocity", "y"), r, offsets[rr], n,
          hash_f64(staged.vy[s]));
      add(particle_var(name, "velocity", "z"), r, offsets[rr], n,
          hash_f64(staged.vz[s]));
      add(particle_var(name, "weighting", pmd::kScalar), r, offsets[rr], n,
          hash_f64(staged.w[s]));
      add(mesh_var("rank_count_" + name), r, rr, 1,
          hash_u64(std::span<const std::uint64_t>(&counts[rr], 1)));
      const std::uint64_t ab[2] = {staged.absorbed_left[s],
                                   staged.absorbed_right[s]};
      add(mesh_var("absorbed_" + name), r, rr * 2, 2,
          hash_u64(std::span<const std::uint64_t>(ab, 2)));
      add(mesh_var("absorbed_weight_" + name), r, rr, 1,
          hash_f64(std::span<const double>(&staged.absorbed_weight[s], 1)));
    }
  }

  for (int r = 0; r < nranks; ++r) {
    const RankCheckpoint& staged = staged_all[std::size_t(r)];
    if (!staged.present) continue;
    const std::uint64_t rr = std::uint64_t(r);
    add(mesh_var("rng_state"), r, rr * 4, 4,
        hash_u64(std::span<const std::uint64_t>(staged.rng.data(), 4)));
    add(mesh_var("ionization_events"), r, rr, 1,
        hash_u64(std::span<const std::uint64_t>(&staged.ionization_events,
                                                1)));
    add(mesh_var("ionized_weight"), r, rr, 1,
        hash_f64(std::span<const double>(&staged.ionized_weight, 1)));
  }
  return blocks;
}

void write_checkpoint_iteration(pmd::Series& series,
                                const std::vector<RankCheckpoint>& staged,
                                const std::vector<std::string>& species_names,
                                int nranks) {
  write_checkpoint_iteration(series, staged, species_names, nranks,
                             [](const std::string&, int) { return true; });
}

void write_checkpoint_iteration(pmd::Series& series,
                                const std::vector<RankCheckpoint>& staged_all,
                                const std::vector<std::string>& species_names,
                                int nranks, const BlockKeep& keep) {
  if (staged_all.size() != std::size_t(nranks))
    throw UsageError("write_checkpoint_iteration: staged size != nranks");
  bool any = false;
  for (const auto& staged : staged_all) any |= staged.present;
  if (!any)
    throw UsageError("write_checkpoint_iteration: no staged checkpoint");

  // Iteration 0 is the (re-opened, overwritten) checkpoint slot.
  auto& iteration = series.write_iteration(0);

  const std::uint64_t ranks = std::uint64_t(nranks);
  std::uint64_t step_attr = 0;

  for (std::size_t s = 0; s < species_names.size(); ++s) {
    // Offsets: exclusive scan over per-rank particle counts (what the real
    // adaptor obtains with MPI_Exscan).
    std::vector<std::uint64_t> counts(std::size_t(nranks), 0);
    for (int r = 0; r < nranks; ++r)
      if (staged_all[std::size_t(r)].present)
        counts[std::size_t(r)] = staged_all[std::size_t(r)].x[s].size();
    std::uint64_t total = 0;
    std::vector<std::uint64_t> offsets(std::size_t(nranks), 0);
    for (int r = 0; r < nranks; ++r) {
      offsets[std::size_t(r)] = total;
      total += counts[std::size_t(r)];
    }

    auto& species = iteration.particles(species_names[s]);
    auto& px = species["position"]["x"];
    auto& vx = species["velocity"]["x"];
    auto& vy = species["velocity"]["y"];
    auto& vz = species["velocity"]["z"];
    auto& weighting = species["weighting"][pmd::kScalar];
    for (auto* comp : {&px, &vx, &vy, &vz, &weighting})
      comp->reset_dataset(Datatype::float64, {std::max<std::uint64_t>(
                                                 total, 1)});

    auto& rank_count =
        iteration.mesh("rank_count_" + species_names[s]).component();
    rank_count.reset_dataset(Datatype::uint64, {ranks});
    auto& absorbed =
        iteration.mesh("absorbed_" + species_names[s]).component();
    absorbed.reset_dataset(Datatype::uint64, {ranks * 2});
    auto& absorbed_weight =
        iteration.mesh("absorbed_weight_" + species_names[s]).component();
    absorbed_weight.reset_dataset(Datatype::float64, {ranks});

    const std::string& name = species_names[s];
    for (int r = 0; r < nranks; ++r) {
      const RankCheckpoint& staged = staged_all[std::size_t(r)];
      if (!staged.present) continue;
      const std::uint64_t rr = std::uint64_t(r);
      const std::uint64_t n = counts[rr];
      if (keep(particle_var(name, "position", "x"), r))
        px.store_chunk<double>(r, staged.x[s], {offsets[rr]}, {n});
      if (keep(particle_var(name, "velocity", "x"), r))
        vx.store_chunk<double>(r, staged.vx[s], {offsets[rr]}, {n});
      if (keep(particle_var(name, "velocity", "y"), r))
        vy.store_chunk<double>(r, staged.vy[s], {offsets[rr]}, {n});
      if (keep(particle_var(name, "velocity", "z"), r))
        vz.store_chunk<double>(r, staged.vz[s], {offsets[rr]}, {n});
      if (keep(particle_var(name, "weighting", pmd::kScalar), r))
        weighting.store_chunk<double>(r, staged.w[s], {offsets[rr]}, {n});
      if (keep(mesh_var("rank_count_" + name), r))
        rank_count.store_chunk<std::uint64_t>(
            r, std::span<const std::uint64_t>(&counts[rr], 1), {rr}, {1});
      const std::uint64_t ab[2] = {staged.absorbed_left[s],
                                   staged.absorbed_right[s]};
      if (keep(mesh_var("absorbed_" + name), r))
        absorbed.store_chunk<std::uint64_t>(
            r, std::span<const std::uint64_t>(ab, 2), {rr * 2}, {2});
      if (keep(mesh_var("absorbed_weight_" + name), r))
        absorbed_weight.store_chunk<double>(
            r, std::span<const double>(&staged.absorbed_weight[s], 1), {rr},
            {1});
    }
  }

  // Per-rank RNG state and MC totals for bit-exact restart.
  auto& rng = iteration.mesh("rng_state").component();
  rng.reset_dataset(Datatype::uint64, {ranks * 4});
  auto& mc_events = iteration.mesh("ionization_events").component();
  mc_events.reset_dataset(Datatype::uint64, {ranks});
  auto& mc_weight = iteration.mesh("ionized_weight").component();
  mc_weight.reset_dataset(Datatype::float64, {ranks});
  for (int r = 0; r < nranks; ++r) {
    const RankCheckpoint& staged = staged_all[std::size_t(r)];
    if (!staged.present) continue;
    const std::uint64_t rr = std::uint64_t(r);
    if (keep(mesh_var("rng_state"), r))
      rng.store_chunk<std::uint64_t>(
          r, std::span<const std::uint64_t>(staged.rng.data(), 4), {rr * 4},
          {4});
    if (keep(mesh_var("ionization_events"), r))
      mc_events.store_chunk<std::uint64_t>(
          r, std::span<const std::uint64_t>(&staged.ionization_events, 1),
          {rr}, {1});
    if (keep(mesh_var("ionized_weight"), r))
      mc_weight.store_chunk<double>(
          r, std::span<const double>(&staged.ionized_weight, 1), {rr}, {1});
    step_attr = std::max(step_attr, staged.step);
  }

  iteration.set_time(double(step_attr));
  iteration.close();
}

void restore_from_series(pmd::Series& series, picmc::Simulation& sim) {
  auto& iteration = series.read_iteration(0);
  const int rank = sim.rank();
  const int nranks = sim.nranks();
  const std::uint64_t rr = std::uint64_t(rank);

  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    picmc::Species& sp = sim.species(s);
    const std::string& name = sp.config.name;
    const auto counts = iteration.mesh("rank_count_" + name)
                            .component()
                            .load<std::uint64_t>();
    if (counts.size() != std::uint64_t(nranks))
      throw UsageError("restore: checkpoint was written with " +
                       std::to_string(counts.size()) + " ranks");
    std::uint64_t offset = 0;
    for (int r = 0; r < rank; ++r) offset += counts[std::size_t(r)];
    const std::uint64_t n = counts[rr];

    auto& species = iteration.particles(name);
    const auto x = species["position"]["x"].load<double>();
    const auto vx = species["velocity"]["x"].load<double>();
    const auto vy = species["velocity"]["y"].load<double>();
    const auto vz = species["velocity"]["z"].load<double>();
    const auto w = species["weighting"][pmd::kScalar].load<double>();

    sp.particles.clear();
    sp.particles.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
      sp.particles.push_back(x[offset + i], vx[offset + i], vy[offset + i],
                             vz[offset + i], w[offset + i]);

    const auto absorbed =
        iteration.mesh("absorbed_" + name).component().load<std::uint64_t>();
    const auto absorbed_weight = iteration.mesh("absorbed_weight_" + name)
                                     .component()
                                     .load<double>();
    sp.absorbed_left = absorbed[rr * 2];
    sp.absorbed_right = absorbed[rr * 2 + 1];
    sp.absorbed_weight = absorbed_weight[rr];
  }

  const auto rng =
      iteration.mesh("rng_state").component().load<std::uint64_t>();
  sim.rng().set_state({rng[rr * 4], rng[rr * 4 + 1], rng[rr * 4 + 2],
                       rng[rr * 4 + 3]});
  const auto events = iteration.mesh("ionization_events")
                          .component()
                          .load<std::uint64_t>();
  const auto weight =
      iteration.mesh("ionized_weight").component().load<double>();
  sim.set_ionization_totals(events[rr], weight[rr]);
  sim.set_current_step(std::uint64_t(iteration.time()));
}

namespace {

/// splitmix64 finalizer: the deterministic mixer behind the re-derived
/// per-rank RNG streams of a reshaped restart.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void restore_repartitioned(pmd::Series& series, picmc::Simulation& sim) {
  auto& iteration = series.read_iteration(0);
  const int new_n = sim.nranks();
  const int rank = sim.rank();

  // How many ranks wrote the checkpoint?  Any species' rank_count mesh
  // carries the answer; with a matching size the exact path applies.
  if (sim.species_count() == 0)
    throw UsageError("restore_repartitioned: simulation has no species");
  const std::uint64_t old_n =
      iteration.mesh("rank_count_" + sim.species(0).config.name)
          .component()
          .load<std::uint64_t>()
          .size();
  if (old_n == std::uint64_t(new_n)) {
    restore_from_series(series, sim);
    return;
  }

  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    picmc::Species& sp = sim.species(s);
    const std::string& name = sp.config.name;
    const auto counts = iteration.mesh("rank_count_" + name)
                            .component()
                            .load<std::uint64_t>();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;

    // Contiguous equal slices over the concatenated global arrays.
    const std::uint64_t base = total / std::uint64_t(new_n);
    const std::uint64_t extra = total % std::uint64_t(new_n);
    const std::uint64_t rr = std::uint64_t(rank);
    const std::uint64_t my_count = base + (rr < extra ? 1 : 0);
    const std::uint64_t my_offset =
        rr * base + std::min<std::uint64_t>(rr, extra);

    auto& species = iteration.particles(name);
    const auto x = species["position"]["x"].load<double>();
    const auto vx = species["velocity"]["x"].load<double>();
    const auto vy = species["velocity"]["y"].load<double>();
    const auto vz = species["velocity"]["z"].load<double>();
    const auto w = species["weighting"][pmd::kScalar].load<double>();

    sp.particles.clear();
    sp.particles.reserve(my_count);
    for (std::uint64_t i = 0; i < my_count; ++i)
      sp.particles.push_back(x[my_offset + i], vx[my_offset + i],
                             vy[my_offset + i], vz[my_offset + i],
                             w[my_offset + i]);

    // Absorption counters are whole-run tallies; keep the global totals by
    // parking the sums on the new rank 0.
    const auto absorbed =
        iteration.mesh("absorbed_" + name).component().load<std::uint64_t>();
    const auto absorbed_weight = iteration.mesh("absorbed_weight_" + name)
                                     .component()
                                     .load<double>();
    sp.absorbed_left = 0;
    sp.absorbed_right = 0;
    sp.absorbed_weight = 0.0;
    if (rank == 0) {
      for (std::uint64_t r = 0; r < old_n; ++r) {
        sp.absorbed_left += absorbed[r * 2];
        sp.absorbed_right += absorbed[r * 2 + 1];
        sp.absorbed_weight += absorbed_weight[r];
      }
    }
  }

  const std::uint64_t step = std::uint64_t(iteration.time());

  // The old per-rank RNG streams cannot be split across a different rank
  // count; derive fresh, deterministic streams instead.
  std::array<std::uint64_t, 4> state{};
  const std::uint64_t tag =
      mix64(step) ^ mix64(std::uint64_t(new_n) * 0x51ed2701u) ^
      mix64(std::uint64_t(rank) + 0xb5ull);
  for (std::size_t i = 0; i < 4; ++i) state[i] = mix64(tag + i);
  state[0] |= 1;  // never the all-zero state
  sim.rng().set_state(state);

  std::uint64_t events = 0;
  double weight = 0.0;
  if (rank == 0) {
    const auto all_events = iteration.mesh("ionization_events")
                                .component()
                                .load<std::uint64_t>();
    const auto all_weight =
        iteration.mesh("ionized_weight").component().load<double>();
    for (std::uint64_t r = 0; r < old_n; ++r) {
      events += all_events[r];
      weight += all_weight[r];
    }
  }
  sim.set_ionization_totals(events, weight);
  sim.set_current_step(step);
}

void restore_from_source(CheckpointSource& source, picmc::Simulation& sim) {
  const int rank = sim.rank();
  const int nranks = sim.nranks();
  if (source.writer_ranks() != std::uint64_t(nranks))
    throw UsageError("restore: checkpoint was written with " +
                     std::to_string(source.writer_ranks()) + " ranks");
  const std::uint64_t rr = std::uint64_t(rank);

  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    picmc::Species& sp = sim.species(s);
    const std::string& name = sp.config.name;
    const auto counts = source.read_u64(mesh_var("rank_count_" + name), 0,
                                        std::uint64_t(nranks));
    std::uint64_t offset = 0;
    for (int r = 0; r < rank; ++r) offset += counts[std::size_t(r)];
    const std::uint64_t n = counts[rr];

    // Ranged reads: this rank touches its own slice of each array, nothing
    // else — against a chain source only the blocks under the slice are
    // fetched from their storing epochs.
    const auto x = source.read_f64(particle_var(name, "position", "x"),
                                   offset, n);
    const auto vx = source.read_f64(particle_var(name, "velocity", "x"),
                                    offset, n);
    const auto vy = source.read_f64(particle_var(name, "velocity", "y"),
                                    offset, n);
    const auto vz = source.read_f64(particle_var(name, "velocity", "z"),
                                    offset, n);
    const auto w = source.read_f64(
        particle_var(name, "weighting", pmd::kScalar), offset, n);

    sp.particles.clear();
    sp.particles.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
      sp.particles.push_back(x[i], vx[i], vy[i], vz[i], w[i]);

    const auto absorbed =
        source.read_u64(mesh_var("absorbed_" + name), rr * 2, 2);
    const auto absorbed_weight =
        source.read_f64(mesh_var("absorbed_weight_" + name), rr, 1);
    sp.absorbed_left = absorbed[0];
    sp.absorbed_right = absorbed[1];
    sp.absorbed_weight = absorbed_weight[0];
  }

  const auto rng = source.read_u64(mesh_var("rng_state"), rr * 4, 4);
  sim.rng().set_state({rng[0], rng[1], rng[2], rng[3]});
  const auto events = source.read_u64(mesh_var("ionization_events"), rr, 1);
  const auto weight = source.read_f64(mesh_var("ionized_weight"), rr, 1);
  sim.set_ionization_totals(events[0], weight[0]);
  sim.set_current_step(source.step());
}

void restore_repartitioned(CheckpointSource& source, picmc::Simulation& sim) {
  const int new_n = sim.nranks();
  const int rank = sim.rank();
  if (sim.species_count() == 0)
    throw UsageError("restore_repartitioned: simulation has no species");
  const std::uint64_t old_n = source.writer_ranks();
  if (old_n == std::uint64_t(new_n)) {
    restore_from_source(source, sim);
    return;
  }

  for (std::size_t s = 0; s < sim.species_count(); ++s) {
    picmc::Species& sp = sim.species(s);
    const std::string& name = sp.config.name;
    const auto counts =
        source.read_u64(mesh_var("rank_count_" + name), 0, old_n);
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;

    // Contiguous equal slices over the concatenated global arrays — the
    // same partition the series overload computes.
    const std::uint64_t base = total / std::uint64_t(new_n);
    const std::uint64_t extra = total % std::uint64_t(new_n);
    const std::uint64_t rr = std::uint64_t(rank);
    const std::uint64_t my_count = base + (rr < extra ? 1 : 0);
    const std::uint64_t my_offset =
        rr * base + std::min<std::uint64_t>(rr, extra);

    const auto x = source.read_f64(particle_var(name, "position", "x"),
                                   my_offset, my_count);
    const auto vx = source.read_f64(particle_var(name, "velocity", "x"),
                                    my_offset, my_count);
    const auto vy = source.read_f64(particle_var(name, "velocity", "y"),
                                    my_offset, my_count);
    const auto vz = source.read_f64(particle_var(name, "velocity", "z"),
                                    my_offset, my_count);
    const auto w = source.read_f64(
        particle_var(name, "weighting", pmd::kScalar), my_offset, my_count);

    sp.particles.clear();
    sp.particles.reserve(my_count);
    for (std::uint64_t i = 0; i < my_count; ++i)
      sp.particles.push_back(x[i], vx[i], vy[i], vz[i], w[i]);

    // Absorption counters are whole-run tallies; keep the global totals by
    // parking the sums on the new rank 0.
    sp.absorbed_left = 0;
    sp.absorbed_right = 0;
    sp.absorbed_weight = 0.0;
    if (rank == 0) {
      const auto absorbed =
          source.read_u64(mesh_var("absorbed_" + name), 0, old_n * 2);
      const auto absorbed_weight =
          source.read_f64(mesh_var("absorbed_weight_" + name), 0, old_n);
      for (std::uint64_t r = 0; r < old_n; ++r) {
        sp.absorbed_left += absorbed[r * 2];
        sp.absorbed_right += absorbed[r * 2 + 1];
        sp.absorbed_weight += absorbed_weight[r];
      }
    }
  }

  const std::uint64_t step = source.step();

  // Same deterministic RNG re-derivation as the series overload: reshaped
  // restarts through either path resume with identical streams.
  std::array<std::uint64_t, 4> state{};
  const std::uint64_t tag =
      mix64(step) ^ mix64(std::uint64_t(new_n) * 0x51ed2701u) ^
      mix64(std::uint64_t(rank) + 0xb5ull);
  for (std::size_t i = 0; i < 4; ++i) state[i] = mix64(tag + i);
  state[0] |= 1;  // never the all-zero state
  sim.rng().set_state(state);

  std::uint64_t events = 0;
  double weight = 0.0;
  if (rank == 0) {
    const auto all_events =
        source.read_u64(mesh_var("ionization_events"), 0, old_n);
    const auto all_weight =
        source.read_f64(mesh_var("ionized_weight"), 0, old_n);
    for (std::uint64_t r = 0; r < old_n; ++r) {
      events += all_events[r];
      weight += all_weight[r];
    }
  }
  sim.set_ionization_totals(events, weight);
  sim.set_current_step(step);
}

}  // namespace bitio::core
