#pragma once
// The single seam between the simulation loop and BIT1's two output paths.
//
// The paper's experiment design swaps the I/O backend underneath an
// unchanged simulation: "BIT1 Original I/O" (per-rank stdio .dat files plus
// rank-0 gathered bit1.dmp) versus the openPMD/ADIOS2 adaptor.  Both are
// expressed as a DiagnosticsSink, chosen once from Bit1IoConfig::mode, so
// callers — the SPMD loop, the integration tests, the benches — follow one
// stage/flush protocol:
//
//   auto sink = make_diagnostics_sink(fs, "run", config, nranks);
//   // each rank, at a datfile event:
//   sink->stage_diagnostics(rank, sim, snapshot);
//   sink->stage_checkpoint(rank, sim);          // at a dmpstep event
//   // collective tail (rank 0 after a barrier):
//   sink->flush_diagnostics(step, time);
//   sink->flush_checkpoint();
//   sink->close();
//
// With `async_write` enabled the openPMD sink's flush_* calls return as soon
// as the step is submitted to the background drain; synchronize() joins the
// outstanding work without closing (read-after-write safety).

#include <memory>
#include <string>
#include <vector>

#include "core/io_config.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/serial_io.hpp"
#include "picmc/simulation.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::core {

class DiagnosticsSink {
public:
  virtual ~DiagnosticsSink() = default;

  /// Backend identifier: "original" or "openpmd".
  virtual std::string sink_name() const = 0;

  /// Stage one rank's diagnostic snapshot (thread-safe; call from the
  /// rank's own thread).
  virtual void stage_diagnostics(int rank, const picmc::Simulation& sim,
                                 const picmc::DiagnosticSnapshot& snapshot) = 0;
  /// Collective tail of a datfile event: persist (or submit) the staged
  /// snapshot as output event `step`.
  virtual void flush_diagnostics(std::uint64_t step, double time) = 0;

  /// Stage one rank's full particle state (thread-safe).
  virtual void stage_checkpoint(int rank, const picmc::Simulation& sim) = 0;
  /// Collective tail of a dmpstep event: persist (or submit) the staged
  /// checkpoint, overwriting the previous one.
  virtual void flush_checkpoint() = 0;

  /// Join any outstanding asynchronous work without closing.  After this
  /// returns every submitted flush_* has landed on storage.  No-op for
  /// synchronous backends.
  virtual void synchronize() {}

  /// Close the sink; joins outstanding work first.
  virtual void close() = 0;
};

/// The original serial path behind the sink interface: staging a rank's
/// diagnostics appends its slow_<r>.dat / slow1_<r>.dat immediately (the
/// real BIT1 writes per rank with no collectivity); flush_diagnostics adds
/// rank 0's four global history files, flush_checkpoint gathers every
/// staged rank's state blob into the serial bit1.dmp.
class SerialDiagnosticsSink final : public DiagnosticsSink {
public:
  SerialDiagnosticsSink(fsim::SharedFs& fs, const std::string& run_dir,
                        int nranks);

  std::string sink_name() const override { return "original"; }
  void stage_diagnostics(int rank, const picmc::Simulation& sim,
                         const picmc::DiagnosticSnapshot& snapshot) override
      EXCLUDES(mutex_);
  void flush_diagnostics(std::uint64_t step, double time) override
      EXCLUDES(mutex_);
  void stage_checkpoint(int rank, const picmc::Simulation& sim) override
      EXCLUDES(mutex_);
  void flush_checkpoint() override EXCLUDES(mutex_);
  void close() override {}

  picmc::Bit1SerialWriter& writer(int rank);

private:
  int nranks_;
  // Built once in the constructor; each rank only touches its own writer
  // (the real BIT1 writes per rank), so the table itself needs no lock.
  std::vector<std::unique_ptr<picmc::Bit1SerialWriter>> writers_;

  util::Mutex mutex_;
  // Globals accumulated from staged snapshots for rank 0's history files.
  std::uint64_t staged_particles_ GUARDED_BY(mutex_) = 0;
  double staged_energy_ GUARDED_BY(mutex_) = 0.0;
  bool history_pending_ GUARDED_BY(mutex_) = false;
  // Valid until flush.
  const picmc::Simulation* rank0_sim_ GUARDED_BY(mutex_) = nullptr;
  std::vector<std::vector<std::uint8_t>> staged_ckpt_ GUARDED_BY(mutex_);
  bool ckpt_pending_ GUARDED_BY(mutex_) = false;
};

/// Build the sink `config.mode` selects (validates `config` first).
/// IoMode::original -> SerialDiagnosticsSink, IoMode::openpmd ->
/// Bit1OpenPmdAdaptor.
std::unique_ptr<DiagnosticsSink> make_diagnostics_sink(
    fsim::SharedFs& fs, const std::string& run_dir,
    const Bit1IoConfig& config, int nranks);

}  // namespace bitio::core
