#pragma once
// The paper's contribution: the BIT1 -> openPMD I/O adaptor
// (the role of bit1.hpp / writeparallel.cpp in the reference
// implementation [9]).
//
// Write path, following Section III-B's step-by-step procedure:
//   1. the adios2 engine configuration (engine type, NumAgg, compressor) is
//      rendered as TOML and passed to the Series constructor;
//   2. each MPI rank stages its *local vectors* (diagnostic rows, particle
//      arrays) with stage_diagnostics / stage_checkpoint — these are
//      appended to the adaptor's global staging ("local vectors are then
//      appended to global vectors");
//   3. a single flush_* call opens the iteration, computes every rank's
//      offset in the global extent (the exscan the paper obtains from MPI),
//      storeChunk()s all non-empty local vectors, and closes the iteration
//      — one flush per output event for optimal I/O efficiency;
//   4. checkpoints always go to iteration 0, which is re-opened and
//      overwritten each time, and the series keeps the latest state for
//      restart.
//
// Two series are maintained per run, mirroring BIT1's two output streams:
//   <run>/dat_file.<engine>  — diagnostics, `num_aggregators` subfiles
//   <run>/dmp_file.<engine>  — checkpoints, `checkpoint_aggregators`
// which yields Table II's file population (N+2 plus 3, "6 files" at one
// node or with 1 AGGR).

#include <memory>
#include <optional>

#include "core/checkpoint_payload.hpp"
#include "core/diagnostics_sink.hpp"
#include "core/io_config.hpp"
#include "openpmd/series.hpp"
#include "picmc/diagnostics.hpp"
#include "picmc/simulation.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::core {

class Bit1OpenPmdAdaptor final : public DiagnosticsSink {
public:
  /// Creates both series (and applies Lustre striping to `run_dir` first if
  /// configured).  `nranks` is the size of the writing communicator.
  Bit1OpenPmdAdaptor(fsim::SharedFs& fs, std::string run_dir,
                     Bit1IoConfig config, int nranks);
  ~Bit1OpenPmdAdaptor();

  Bit1OpenPmdAdaptor(const Bit1OpenPmdAdaptor&) = delete;
  Bit1OpenPmdAdaptor& operator=(const Bit1OpenPmdAdaptor&) = delete;

  std::string diag_path() const;
  std::string checkpoint_path() const;

  std::string sink_name() const override { return "openpmd"; }

  // -- diagnostics (the `datfile` event) -------------------------------------
  /// Stage one rank's diagnostic snapshot.  Thread-safe.
  void stage_diagnostics(int rank, const picmc::Simulation& sim,
                         const picmc::DiagnosticSnapshot& snapshot) override
      EXCLUDES(mutex_);
  /// Collective tail: write the staged snapshot as iteration `step`.  With
  /// async_write the call returns once the step is submitted to the drain.
  void flush_diagnostics(std::uint64_t step, double time) override
      EXCLUDES(mutex_);

  // -- checkpointing (the `dmpstep` event) ------------------------------------
  /// Stage one rank's full particle state.  Thread-safe.
  void stage_checkpoint(int rank, const picmc::Simulation& sim) override
      EXCLUDES(mutex_);
  /// Collective tail: rewrite iteration 0 of the checkpoint series.  With
  /// async_write the call returns once the step is submitted to the drain.
  void flush_checkpoint() override EXCLUDES(mutex_);

  /// Join outstanding async drains on both series without closing; after
  /// this every submitted flush has landed (read-after-write safe).
  void synchronize() override EXCLUDES(mutex_);

  /// Restore `sim` (rank sim.rank() of sim.nranks()) from the latest
  /// checkpoint.  The adaptor must be closed first; restart opens the
  /// checkpoint series read-only.
  static void restore(fsim::SharedFs& fs, const std::string& run_dir,
                      const Bit1IoConfig& config, picmc::Simulation& sim);

  /// Close both series (joins any outstanding async drains first).
  void close() override EXCLUDES(mutex_);

private:
  struct RankDiag {
    bool present = false;
    // Per species: vdf row, particle count, kinetic energy, total weight.
    std::vector<std::vector<double>> vdf;
    std::vector<std::uint64_t> count;
    std::vector<double> energy;
    std::vector<double> weight;
    std::vector<double> density_rank0;  // species-major, rank 0 only
    std::uint64_t ionization_events = 0;
  };

  void require_species_layout(const picmc::Simulation& sim) REQUIRES(mutex_);

  fsim::SharedFs& fs_;
  std::string run_dir_;
  Bit1IoConfig config_;
  int nranks_;

  // One lock covers the whole adaptor: the staging tables (written from
  // every rank's thread), the lazily-fixed layout, and the series handles
  // the collective flush tail drives.
  util::Mutex mutex_;
  std::vector<std::string> species_names_ GUARDED_BY(mutex_);
  std::size_t nnodes_ GUARDED_BY(mutex_) = 0;
  std::unique_ptr<pmd::Series> diag_series_ GUARDED_BY(mutex_);
  std::unique_ptr<pmd::Series> ckpt_series_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  std::vector<RankDiag> staged_diag_ GUARDED_BY(mutex_);
  // Checkpoint staging uses the shared payload type (checkpoint_payload.hpp)
  // so the resilience layer writes the exact same schema.
  std::vector<RankCheckpoint> staged_ckpt_ GUARDED_BY(mutex_);
};

}  // namespace bitio::core
