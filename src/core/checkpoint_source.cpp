#include "core/checkpoint_source.hpp"

#include "util/error.hpp"

namespace bitio::core {

namespace {

std::vector<std::string> split_path(const std::string& var) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= var.size()) {
    const std::size_t slash = var.find('/', begin);
    if (slash == std::string::npos) {
      parts.push_back(var.substr(begin));
      break;
    }
    parts.push_back(var.substr(begin, slash - begin));
    begin = slash + 1;
  }
  return parts;
}

}  // namespace

SeriesCheckpointSource::SeriesCheckpointSource(fsim::SharedFs& fs,
                                               const std::string& path)
    : series_(fs, path, pmd::Access::read_only),
      iteration_(series_.read_iteration(0)) {}

std::uint64_t SeriesCheckpointSource::step() {
  return std::uint64_t(iteration_.time());
}

std::uint64_t SeriesCheckpointSource::writer_ranks() {
  // Every checkpoint carries one ionization_events element per writer rank.
  return component("meshes/ionization_events/SCALAR").extent()[0];
}

pmd::RecordComponent& SeriesCheckpointSource::component(
    const std::string& var) {
  const auto parts = split_path(var);
  if (parts.size() == 3 && parts[0] == "meshes")
    return iteration_.mesh(parts[1])[parts[2]];
  if (parts.size() == 4 && parts[0] == "particles")
    return iteration_.particles(parts[1])[parts[2]][parts[3]];
  throw UsageError("CheckpointSource: unrecognized variable path '" + var +
                   "'");
}

std::vector<std::uint64_t> SeriesCheckpointSource::read_u64(
    const std::string& var, std::uint64_t elem_offset, std::uint64_t count) {
  const auto all = component(var).load<std::uint64_t>();
  if (elem_offset + count > all.size())
    throw UsageError("CheckpointSource: slice of '" + var +
                     "' exceeds its extent");
  return std::vector<std::uint64_t>(all.begin() + std::ptrdiff_t(elem_offset),
                                    all.begin() +
                                        std::ptrdiff_t(elem_offset + count));
}

std::vector<double> SeriesCheckpointSource::read_f64(const std::string& var,
                                                     std::uint64_t elem_offset,
                                                     std::uint64_t count) {
  const auto all = component(var).load<double>();
  if (elem_offset + count > all.size())
    throw UsageError("CheckpointSource: slice of '" + var +
                     "' exceeds its extent");
  return std::vector<double>(all.begin() + std::ptrdiff_t(elem_offset),
                             all.begin() +
                                 std::ptrdiff_t(elem_offset + count));
}

}  // namespace bitio::core
