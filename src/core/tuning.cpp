#include "core/tuning.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace bitio::core {

TuningReport tune_io(const fsim::SystemProfile& profile,
                     const ScaleSpec& spec, const Bit1IoConfig& base,
                     TuningSpace space) {
  if (space.aggregators.empty()) {
    space.aggregators = {1, spec.nodes, 2 * spec.nodes, 4 * spec.nodes};
  }
  if (space.stripe_counts.empty())
    space.stripe_counts = {1, 2, 4, std::min(8, profile.ost_count)};
  if (space.stripe_sizes.empty())
    space.stripe_sizes = {1 * MiB, 4 * MiB, 16 * MiB};
  if (space.codecs.empty()) space.codecs = {"none", "blosc"};

  // Deduplicate (e.g. nodes == 1 makes several aggregator candidates equal).
  std::sort(space.aggregators.begin(), space.aggregators.end());
  space.aggregators.erase(
      std::unique(space.aggregators.begin(), space.aggregators.end()),
      space.aggregators.end());
  std::sort(space.stripe_counts.begin(), space.stripe_counts.end());
  space.stripe_counts.erase(
      std::unique(space.stripe_counts.begin(), space.stripe_counts.end()),
      space.stripe_counts.end());

  TuningReport report;
  for (int aggregators : space.aggregators) {
    if (aggregators <= 0 || aggregators > spec.ranks()) continue;
    for (int stripe_count : space.stripe_counts) {
      if (stripe_count <= 0 || stripe_count > profile.ost_count) continue;
      for (std::uint64_t stripe_size : space.stripe_sizes) {
        for (const auto& codec : space.codecs) {
          Bit1IoConfig candidate = base;
          candidate.mode = IoMode::openpmd;
          candidate.num_aggregators = aggregators;
          candidate.codec = codec;
          candidate.use_striping = true;
          candidate.striping = {stripe_count, stripe_size};
          TuningOption option;
          option.config = candidate;
          option.result = run_openpmd_epoch(profile, spec, candidate);
          report.explored.push_back(std::move(option));
        }
      }
    }
  }
  if (report.explored.empty())
    throw UsageError("tune_io: empty candidate space");
  std::sort(report.explored.begin(), report.explored.end(),
            [](const TuningOption& a, const TuningOption& b) {
              return a.result.write_gibps > b.result.write_gibps;
            });
  report.best = report.explored.front();
  return report;
}

}  // namespace bitio::core
