#pragma once
// Graceful I/O degradation ladder: a circuit breaker around the
// DiagnosticsSink that steps the service level down when the backend keeps
// failing and back up once it has been healthy for a while.
//
// Levels, highest first:
//
//   async   openPMD sink with the BP5 asynchronous drain (AsyncWrite)
//   sync    openPMD sink draining on the critical path
//   serial  the original per-rank stdio fallback — it writes tiny
//           record-at-a-time appends and has no aggregation pipeline to
//           wedge, so it is the level of last resort
//
// A flush that throws IoError (the backend failed: ENOSPC pressure, EIO)
// or TimeoutError (the drain watchdog abandoned a wedged step) is absorbed:
// that output event's data is lost but the run keeps going.  After
// `degrade_threshold` consecutive failures the ladder closes the sink
// (best-effort) and rebuilds one level lower in a fresh subdirectory; after
// `degrade_cooldown` consecutive clean flushes it steps back up.  Every
// transition is logged, charged to the trace as a zero-cost cpu op tagged
// "degrade" / "recovery" (so Darshan capture can count it), and reported
// through stats() / stats_json() for resilience.json.

#include <functional>
#include <memory>
#include <string>

#include "core/diagnostics_sink.hpp"
#include "core/io_config.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace bitio::core {

/// The rungs of the ladder, ordered so that a lower value is a lower
/// (more conservative) service level.
enum class IoServiceLevel { serial = 0, sync = 1, async = 2 };

const char* service_level_name(IoServiceLevel level);

struct LadderStats {
  IoServiceLevel level = IoServiceLevel::async;  // current rung
  int degradations = 0;        // step-downs taken
  int recoveries = 0;          // step-ups taken after cool-down
  int failures_absorbed = 0;   // flushes whose failure was swallowed
  int rebuilds = 0;            // sinks constructed after the initial one
};

class DegradingSink final : public DiagnosticsSink {
public:
  /// (from, to, reason): observe transitions, e.g. to mirror them into
  /// resil::ResilienceStats.  Called with the ladder lock held — do not call
  /// back into the sink.
  using TransitionCallback = std::function<void(
      IoServiceLevel from, IoServiceLevel to, const std::string& reason)>;

  /// Builds the initial inner sink at the highest level `config` allows:
  /// async for openpmd + async_write, sync for plain openpmd, serial for
  /// IoMode::original (which then never degrades — it is already the floor).
  DegradingSink(fsim::SharedFs& fs, std::string run_dir, Bit1IoConfig config,
                int nranks);

  void set_transition_callback(TransitionCallback cb) EXCLUDES(mutex_);

  std::string sink_name() const override { return "degrading"; }

  void stage_diagnostics(int rank, const picmc::Simulation& sim,
                         const picmc::DiagnosticSnapshot& snapshot) override;
  void flush_diagnostics(std::uint64_t step, double time) override;
  void stage_checkpoint(int rank, const picmc::Simulation& sim) override;
  void flush_checkpoint() override;
  void synchronize() override;
  /// Closes the active inner sink.  Errors propagate — by close time there
  /// is no later flush left to degrade for.
  void close() override;

  IoServiceLevel level() const EXCLUDES(mutex_);
  /// Directory the active inner sink writes to: the run dir for the initial
  /// sink, `<run>/ladder_<k>_<level>` after the k-th rebuild.
  std::string current_dir() const EXCLUDES(mutex_);
  LadderStats stats() const EXCLUDES(mutex_);
  /// {"level": "sync", "degradations": 1, ...} for resilience.json.
  Json stats_json() const;

private:
  /// Build a fresh inner sink for `level` writing into `dir`.  Takes the
  /// directory as a parameter (rather than reading current_dir_) so it owns
  /// no breaker state and can be called lock-free from the constructor.
  std::unique_ptr<DiagnosticsSink> build_inner(IoServiceLevel level,
                                               const std::string& dir);
  /// Run `op` against the inner sink; absorb IoError / TimeoutError and
  /// drive the breaker.  `what` names the call for logs.
  void guarded(const char* what,
               const std::function<void(DiagnosticsSink&)>& op)
      EXCLUDES(mutex_);
  void note_failure_locked(const char* what, const std::string& cause)
      REQUIRES(mutex_);
  void note_success_locked() REQUIRES(mutex_);
  void move_to_locked(IoServiceLevel next, const std::string& reason)
      REQUIRES(mutex_);

  fsim::SharedFs& fs_;
  std::string run_dir_;
  Bit1IoConfig config_;
  int nranks_;
  IoServiceLevel initial_level_ = IoServiceLevel::async;

  mutable util::Mutex mutex_;
  std::unique_ptr<DiagnosticsSink> inner_ GUARDED_BY(mutex_);
  std::string current_dir_ GUARDED_BY(mutex_);
  IoServiceLevel level_ GUARDED_BY(mutex_) = IoServiceLevel::async;
  // Set when a failure was absorbed since the last rebuild: a sink that
  // failed mid-flush may be left in an inconsistent state, so follow-on
  // errors of any type count as failures instead of escaping the breaker.
  bool inner_poisoned_ GUARDED_BY(mutex_) = false;
  int consecutive_failures_ GUARDED_BY(mutex_) = 0;
  int consecutive_successes_ GUARDED_BY(mutex_) = 0;
  LadderStats stats_ GUARDED_BY(mutex_);
  TransitionCallback on_transition_ GUARDED_BY(mutex_);
};

/// Convenience: wrap make_diagnostics_sink's choice in the ladder.
std::unique_ptr<DegradingSink> make_degrading_sink(fsim::SharedFs& fs,
                                                   const std::string& run_dir,
                                                   const Bit1IoConfig& config,
                                                   int nranks);

}  // namespace bitio::core
