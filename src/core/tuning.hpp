#pragma once
// TuningAdvisor: model-driven search over the paper's tuning space
// (aggregator count, Lustre stripe count/size, compressor) for a given
// system and scale.  This automates what Section IV does by hand: run the
// model for each candidate configuration and pick the highest-throughput
// one.  Used by the io_tuning example and the ablation benches.

#include <vector>

#include "core/workload.hpp"

namespace bitio::core {

struct TuningOption {
  Bit1IoConfig config;
  EpochResult result;
};

struct TuningReport {
  TuningOption best;
  std::vector<TuningOption> explored;  // sorted by descending throughput
};

/// Candidate grids; empty vectors fall back to sensible defaults derived
/// from the scale (1, 2/node, 4/node aggregators; stripes {1,2,4,8} x
/// {1M,4M,16M}; codecs none/blosc).
struct TuningSpace {
  std::vector<int> aggregators;
  std::vector<int> stripe_counts;
  std::vector<std::uint64_t> stripe_sizes;
  std::vector<std::string> codecs;
};

/// Explore the space and return every option scored by the storage model.
TuningReport tune_io(const fsim::SystemProfile& profile,
                     const ScaleSpec& spec, const Bit1IoConfig& base,
                     TuningSpace space = {});

}  // namespace bitio::core
