#pragma once
// Scale harness: generates the I/O workload of a BIT1 production run (100K
// cells, 3 species, 30M particles, diagnostics every 1K steps, checkpoints
// every 10K steps, up to 25600 ranks) against the storage simulator, in
// either Original-I/O or openPMD form, and scores it with the queueing
// replay.  This is what the fig*/table* benches drive.
//
// Live runs (tests, examples) push real bytes through the same writers; at
// paper scale the data payloads are synthetic (size-only) while every piece
// of *structure* — file population, aggregation mapping, chunk metadata,
// offsets, record sizes, metadata-op sequences — executes for real.  The
// volume model constants are calibrated against Table II (see DESIGN.md
// Section 5 and EXPERIMENTS.md).

#include <map>

#include "core/io_config.hpp"
#include "fsim/storage_model.hpp"
#include "fsim/system_profiles.hpp"

namespace bitio::core {

struct ScaleSpec {
  int nodes = 1;
  int ranks_per_node = 128;
  int dat_dumps = 10;   // diagnostic dumps in the measured window
  int checkpoints = 1;  // checkpoint events in the measured window

  // Volume model: diagnostics bytes over a FULL 200-dump run, shared
  // across ranks (strong scaling: the per-rank share shrinks with rank
  // count), plus a fixed per-rank tail per run (headers, footers).
  //
  // NOTE (EXPERIMENTS.md discusses this): the paper's Table II file sizes
  // imply ~0.5 GiB of diagnostics per run, while its throughput numbers
  // (15.8 GiB/s peaks) require tens of GiB moving through the same window;
  // the two measurement campaigns evidently ran different output volumes.
  // Use table2() for the file-size census and throughput() for the GiB/s
  // figures.
  std::uint64_t diag_run_bytes = 48ull << 30;
  std::uint64_t per_rank_run_bytes = 6ull << 10;
  int dumps_per_run = 200;
  // Rank 0 writes this multiple of the average rank's diagnostics (Table
  // II's max ~= 2 x avg in the Original column).
  double rank0_skew = 1.7;
  // State per checkpoint event (the paper's runs kept reduced state; the
  // full 30M-particle phase space would be ~1.2 GiB).
  std::uint64_t checkpoint_bytes = 2ull << 20;

  // Synthetic codec ratios (Table II: Blosc -11.4% on BIT1 data, bzip2 ~0).
  double blosc_ratio = 0.886;
  double bzip2_ratio = 1.0;

  int ranks() const { return nodes * ranks_per_node; }

  /// Throughput-figure spec (Figs 2-4, 6-9): one 10-dump output window of
  /// a diagnostics-heavy run.
  static ScaleSpec throughput(int nodes);
  /// Table II spec: a full 200-dump run of the smaller-volume campaign,
  /// for the file count/size census.
  static ScaleSpec table2(int nodes);

  /// Per-rank diagnostic payload bytes for one dump.
  std::uint64_t diag_bytes_for_rank(int rank) const;
  /// Per-rank checkpoint payload bytes for one checkpoint event.
  std::uint64_t ckpt_bytes_for_rank(int rank) const;
};

struct EpochResult {
  double makespan_s = 0.0;
  std::uint64_t bytes_written = 0;
  double write_gibps = 0.0;  // bytes_written / makespan
  // Rank-to-rank gather traffic (OpKind::xfer; zero on a flat topology).
  std::uint64_t bytes_gathered = 0;
  // Per-process mean costs (Fig 5).
  double mean_meta_s = 0.0;
  double mean_write_s = 0.0;
  double mean_read_s = 0.0;
  // Mean overlapped drain time (async_write; off the critical path).
  double mean_drain_s = 0.0;
  // File population (Table II).
  std::uint64_t total_files = 0;
  std::uint64_t avg_file_bytes = 0;
  std::uint64_t max_file_bytes = 0;
  // CPU charge break-down (Fig 8): tag -> seconds.
  std::map<std::string, double> cpu_by_tag;
};

/// One output window of the original serial-I/O BIT1 (Figs 2-5 baseline).
/// `timing = false` skips trace recording and the replay (layout census
/// only — Table II at full run length).
EpochResult run_original_epoch(const fsim::SystemProfile& profile,
                               const ScaleSpec& spec, bool timing = true);

/// One output window through the openPMD adaptor path with the given I/O
/// configuration (engine, aggregators, codec, striping).
EpochResult run_openpmd_epoch(const fsim::SystemProfile& profile,
                              const ScaleSpec& spec,
                              const Bit1IoConfig& config, bool timing = true);

}  // namespace bitio::core
