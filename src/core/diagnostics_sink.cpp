#include "core/diagnostics_sink.hpp"

#include "core/adaptor.hpp"
#include "picmc/checkpoint.hpp"
#include "util/error.hpp"

namespace bitio::core {

SerialDiagnosticsSink::SerialDiagnosticsSink(fsim::SharedFs& fs,
                                             const std::string& run_dir,
                                             int nranks)
    : nranks_(nranks) {
  if (nranks <= 0)
    throw UsageError("SerialDiagnosticsSink: nranks must be positive");
  writers_.reserve(std::size_t(nranks));
  for (int r = 0; r < nranks; ++r)
    writers_.push_back(
        std::make_unique<picmc::Bit1SerialWriter>(fs, run_dir, r, nranks));
  staged_ckpt_.resize(std::size_t(nranks));
}

picmc::Bit1SerialWriter& SerialDiagnosticsSink::writer(int rank) {
  if (rank < 0 || rank >= nranks_)
    throw UsageError("SerialDiagnosticsSink: rank out of range");
  return *writers_[std::size_t(rank)];
}

void SerialDiagnosticsSink::stage_diagnostics(
    int rank, const picmc::Simulation& sim,
    const picmc::DiagnosticSnapshot& snapshot) {
  // The original BIT1 writes each rank's .dat files right away — there is
  // no collective stage, so "staging" appends immediately.
  writer(rank).write_diagnostics(sim, snapshot);

  util::MutexLock lock(mutex_);
  for (const auto& sp : snapshot.species) {
    staged_particles_ += sp.particle_count;
    staged_energy_ += sp.kinetic_energy;
  }
  if (rank == 0) rank0_sim_ = &sim;
  history_pending_ = true;
}

void SerialDiagnosticsSink::flush_diagnostics(std::uint64_t, double) {
  util::MutexLock lock(mutex_);
  if (!history_pending_)
    throw UsageError("SerialDiagnosticsSink: no staged diagnostics to flush");
  // Rank 0's four global history files need its simulation for the wall /
  // ionization totals; tolerate windows where rank 0 did not stage.
  if (rank0_sim_ != nullptr)
    writers_[0]->write_history(*rank0_sim_, staged_particles_,
                               staged_energy_);
  staged_particles_ = 0;
  staged_energy_ = 0.0;
  rank0_sim_ = nullptr;
  history_pending_ = false;
}

void SerialDiagnosticsSink::stage_checkpoint(int rank,
                                             const picmc::Simulation& sim) {
  auto blob = picmc::save_checkpoint(sim);
  util::MutexLock lock(mutex_);
  if (rank < 0 || rank >= nranks_)
    throw UsageError("SerialDiagnosticsSink: rank out of range");
  staged_ckpt_[std::size_t(rank)] = std::move(blob);
  ckpt_pending_ = true;
}

void SerialDiagnosticsSink::flush_checkpoint() {
  util::MutexLock lock(mutex_);
  if (!ckpt_pending_)
    throw UsageError("SerialDiagnosticsSink: no staged checkpoint to flush");
  writers_[0]->write_checkpoint(staged_ckpt_);
  for (auto& blob : staged_ckpt_) blob.clear();
  ckpt_pending_ = false;
}

std::unique_ptr<DiagnosticsSink> make_diagnostics_sink(
    fsim::SharedFs& fs, const std::string& run_dir,
    const Bit1IoConfig& config, int nranks) {
  config.validate();
  if (config.mode == IoMode::original) {
    // The serial path writes relative to run_dir with per-rank file names;
    // the writers create files lazily, matching BIT1's fopen-per-event.
    return std::make_unique<SerialDiagnosticsSink>(fs, run_dir, nranks);
  }
  return std::make_unique<Bit1OpenPmdAdaptor>(fs, run_dir, config, nranks);
}

}  // namespace bitio::core
