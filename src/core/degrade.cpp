#include "core/degrade.hpp"

#include <utility>

#include "fsim/posix_fs.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace bitio::core {

const char* service_level_name(IoServiceLevel level) {
  switch (level) {
    case IoServiceLevel::serial: return "serial";
    case IoServiceLevel::sync: return "sync";
    case IoServiceLevel::async: return "async";
  }
  return "?";
}

DegradingSink::DegradingSink(fsim::SharedFs& fs, std::string run_dir,
                             Bit1IoConfig config, int nranks)
    : fs_(fs),
      run_dir_(std::move(run_dir)),
      config_(std::move(config)),
      nranks_(nranks) {
  config_.validate();
  if (config_.mode == IoMode::original)
    initial_level_ = IoServiceLevel::serial;
  else if (config_.async_write)
    initial_level_ = IoServiceLevel::async;
  else
    initial_level_ = IoServiceLevel::sync;
  level_ = initial_level_;
  stats_.level = level_;
  current_dir_ = run_dir_;
  inner_ = build_inner(initial_level_, run_dir_);
}

void DegradingSink::set_transition_callback(TransitionCallback cb) {
  util::MutexLock lock(mutex_);
  on_transition_ = std::move(cb);
}

std::unique_ptr<DiagnosticsSink> DegradingSink::build_inner(
    IoServiceLevel level, const std::string& dir) {
  Bit1IoConfig cfg = config_;
  switch (level) {
    case IoServiceLevel::async:
      cfg.mode = IoMode::openpmd;
      cfg.async_write = true;
      break;
    case IoServiceLevel::sync:
      cfg.mode = IoMode::openpmd;
      cfg.async_write = false;
      break;
    case IoServiceLevel::serial:
      cfg.mode = IoMode::original;
      break;
  }
  return make_diagnostics_sink(fs_, dir, cfg, nranks_);
}

void DegradingSink::guarded(const char* what,
                            const std::function<void(DiagnosticsSink&)>& op) {
  // The stage/flush protocol serializes flushes behind a barrier, so the
  // lock is uncontended there; holding it across the call also keeps a
  // rebuild from swapping the sink out from under a staging rank.
  util::MutexLock lock(mutex_);
  try {
    op(*inner_);
    note_success_locked();
  } catch (const TimeoutError& e) {
    inner_poisoned_ = true;
    note_failure_locked(what, e.what());
  } catch (const IoError& e) {
    inner_poisoned_ = true;
    note_failure_locked(what, e.what());
  } catch (const Error& e) {
    // Other Error types (e.g. a UsageError about a still-open iteration)
    // only count as backend failures when the inner sink already absorbed
    // one — a failed flush can leave it inconsistent, and the breaker must
    // keep stepping down rather than let the follow-on error kill the run.
    if (!inner_poisoned_) throw;
    note_failure_locked(what, e.what());
  }
}

void DegradingSink::note_failure_locked(const char* what,
                                        const std::string& cause) {
  ++stats_.failures_absorbed;
  consecutive_successes_ = 0;
  ++consecutive_failures_;
  log_warn(strfmt("io ladder: %s failed at level %s (%d/%d before "
                  "step-down): %s",
                  what, service_level_name(level_), consecutive_failures_,
                  config_.degrade_threshold, cause.c_str()));
  if (consecutive_failures_ >= config_.degrade_threshold &&
      level_ != IoServiceLevel::serial) {
    const auto next = IoServiceLevel(int(level_) - 1);
    move_to_locked(next, cause);
    ++stats_.degradations;
    // A zero-cost cpu op tagged "degrade": Darshan capture counts these
    // into the job-level `degradations` counter.
    fsim::FsClient(fs_, 0).charge_cpu(0.0, "degrade");
  }
}

void DegradingSink::note_success_locked() {
  // A poisoned inner sink stays suspect until it is rebuilt: an op that
  // happens to succeed on it (a no-op synchronize, a buffering stage) must
  // neither reset the breaker nor count toward the cool-down.
  if (inner_poisoned_) return;
  consecutive_failures_ = 0;
  if (level_ == initial_level_) return;
  ++consecutive_successes_;
  if (consecutive_successes_ < config_.degrade_cooldown) return;
  const auto next = IoServiceLevel(int(level_) + 1);
  move_to_locked(next, strfmt("%d clean flushes at level %s",
                              consecutive_successes_,
                              service_level_name(level_)));
  ++stats_.recoveries;
  fsim::FsClient(fs_, 0).charge_cpu(0.0, "recovery");
}

void DegradingSink::move_to_locked(IoServiceLevel next,
                                   const std::string& reason) {
  const IoServiceLevel from = level_;
  try {
    inner_->close();
  } catch (const Error&) {
    // The old sink is being abandoned because it is failing; a failed
    // close is expected and carries no information the breaker lacks.
  }
  inner_.reset();
  ++stats_.rebuilds;
  // A fresh subdirectory per rebuild: the openPMD series create-mode
  // errors on existing files, and it keeps each level's output readable
  // on its own.
  current_dir_ = strfmt("%s/ladder_%d_%s", run_dir_.c_str(), stats_.rebuilds,
                        service_level_name(next));
  level_ = next;
  stats_.level = next;
  inner_poisoned_ = false;
  consecutive_failures_ = 0;
  consecutive_successes_ = 0;
  inner_ = build_inner(next, current_dir_);
  const bool down = int(next) < int(from);
  log(down ? LogLevel::warn : LogLevel::info,
      strfmt("io ladder: %s %s -> %s (%s), now writing to %s",
             down ? "degraded" : "recovered", service_level_name(from),
             service_level_name(next), reason.c_str(),
             current_dir_.c_str()));
  if (on_transition_) on_transition_(from, next, reason);
}

void DegradingSink::stage_diagnostics(
    int rank, const picmc::Simulation& sim,
    const picmc::DiagnosticSnapshot& snapshot) {
  // The serial sink writes on stage (there is no collective tail to fail
  // instead), so staging must run the breaker too.  Failures here do not
  // step the ladder past its floor; they are only absorbed and counted.
  guarded("stage_diagnostics", [&](DiagnosticsSink& sink) {
    sink.stage_diagnostics(rank, sim, snapshot);
  });
}

void DegradingSink::flush_diagnostics(std::uint64_t step, double time) {
  guarded("flush_diagnostics", [&](DiagnosticsSink& sink) {
    sink.flush_diagnostics(step, time);
  });
}

void DegradingSink::stage_checkpoint(int rank, const picmc::Simulation& sim) {
  guarded("stage_checkpoint", [&](DiagnosticsSink& sink) {
    sink.stage_checkpoint(rank, sim);
  });
}

void DegradingSink::flush_checkpoint() {
  guarded("flush_checkpoint",
          [&](DiagnosticsSink& sink) { sink.flush_checkpoint(); });
}

void DegradingSink::synchronize() {
  // An async drain that wedged surfaces its TimeoutError here; that is a
  // failure of the async level like any other.
  guarded("synchronize", [&](DiagnosticsSink& sink) { sink.synchronize(); });
}

void DegradingSink::close() {
  util::MutexLock lock(mutex_);
  if (inner_) inner_->close();
}

IoServiceLevel DegradingSink::level() const {
  util::MutexLock lock(mutex_);
  return level_;
}

std::string DegradingSink::current_dir() const {
  util::MutexLock lock(mutex_);
  return current_dir_;
}

LadderStats DegradingSink::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

Json DegradingSink::stats_json() const {
  const LadderStats s = stats();
  JsonObject out;
  out["level"] = Json(service_level_name(s.level));
  out["degradations"] = Json(s.degradations);
  out["recoveries"] = Json(s.recoveries);
  out["failures_absorbed"] = Json(s.failures_absorbed);
  out["rebuilds"] = Json(s.rebuilds);
  return Json(std::move(out));
}

std::unique_ptr<DegradingSink> make_degrading_sink(fsim::SharedFs& fs,
                                                   const std::string& run_dir,
                                                   const Bit1IoConfig& config,
                                                   int nranks) {
  return std::make_unique<DegradingSink>(fs, run_dir, config, nranks);
}

}  // namespace bitio::core
